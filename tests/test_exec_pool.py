"""Tests for the parallel fan-out engine.

The engine's contract is bit-level determinism: every RunSpec is a pure
function of its fields, so serial, parallel, cached, and trace-cached
execution must produce byte-identical RunResults, returned in input
order regardless of completion order.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import SweepPoint, sweep
from repro.exec.cache import ResultCache, TraceCache
from repro.exec.pool import execute, local_ct_spec, run_spec
from repro.exec.spec import RunSpec
from repro.sim import runner
from repro.telemetry import TelemetryConfig
from tests.conftest import quiet_fabric

SMALL = {"npages": 64, "passes": 1}


def grid(systems=("fastswap", "hopp"), fractions=(0.25, 0.5)):
    return [
        RunSpec(
            workload="stream-simple",
            system=system,
            fraction=fraction,
            seed=3,
            workload_kwargs=dict(SMALL),
            fabric=quiet_fabric(3),
        )
        for system in systems
        for fraction in fractions
    ]


def dicts(results):
    return [r.to_dict(full=True) for r in results]


class TestExecute:
    def test_parallel_equals_serial(self):
        specs = grid()
        serial = execute(specs, jobs=1)
        parallel = execute(specs, jobs=2)
        assert dicts(parallel) == dicts(serial)

    def test_results_are_input_ordered(self):
        specs = grid()
        results = execute(specs, jobs=2)
        for spec, result in zip(specs, results):
            assert result.system == spec.system

    def test_trace_cache_does_not_change_results(self):
        specs = grid()
        without = [run_spec(s) for s in specs]
        with_cache = execute(specs, trace_cache=TraceCache())
        assert dicts(with_cache) == dicts(without)

    def test_mixed_cache_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = grid()
        execute(specs[:2], cache=cache)
        results = execute(specs, jobs=2, cache=cache)
        assert cache.hits == 2
        assert dicts(results) == dicts(execute(specs))

    def test_on_result_fires_in_input_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = grid()
        execute(specs[1:2], cache=cache)
        seen = []
        execute(
            specs,
            cache=cache,
            on_result=lambda i, spec, result, was_cached: seen.append(
                (i, spec.system, was_cached)
            ),
        )
        assert [i for i, _, _ in seen] == [0, 1, 2, 3]
        assert [cached for _, _, cached in seen] == [False, True, False, False]

    def test_local_ct_spec_matches_runner_reference(self):
        from repro.workloads import build

        spec = local_ct_spec("stream-simple", 3, quiet_fabric(3), SMALL)
        engine_ct = run_spec(spec).completion_time_us
        workload = build("stream-simple", seed=3, **SMALL)
        assert engine_ct == runner.local_completion_time(workload, quiet_fabric(3))


class TestWorkerClamp:
    def test_jobs_clamped_to_cpu_count_with_warning(self, monkeypatch, caplog):
        import logging

        import repro.exec.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
        specs = grid()
        with caplog.at_level(logging.WARNING, logger="repro.exec.pool"):
            clamped = execute(specs, jobs=8)
        assert any("clamping jobs=8 to 1" in rec.getMessage()
                   for rec in caplog.records)
        # Clamping changes worker count, never results.
        assert dicts(clamped) == dicts(execute(specs, jobs=1))

    def test_jobs_within_cpu_count_does_not_warn(self, monkeypatch, caplog):
        import logging

        import repro.exec.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 64)
        specs = grid()
        with caplog.at_level(logging.WARNING, logger="repro.exec.pool"):
            execute(specs, jobs=2)
        assert not caplog.records

    def test_cpu_count_none_falls_back_to_one_worker(self, monkeypatch):
        import repro.exec.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: None)
        specs = grid()
        assert dicts(execute(specs, jobs=4)) == dicts(execute(specs, jobs=1))


class TestTelemetryOnPool:
    def telemetry_grid(self, **telemetry_kwargs):
        specs = grid()
        for spec in specs:
            spec.telemetry = TelemetryConfig(**telemetry_kwargs)
        return specs

    def test_timeseries_rides_the_worker_wire(self):
        # Per-run time-series telemetry serializes through the worker
        # wire format: parallel results must be byte-identical to
        # serial, telemetry blob included.
        specs = self.telemetry_grid(epoch_us=500.0)
        serial = execute(specs, jobs=1)
        parallel = execute(specs, jobs=2)
        assert dicts(parallel) == dicts(serial)
        for result in parallel:
            assert result.telemetry is not None
            assert result.telemetry["timeseries"]["epochs"] >= 1

    def test_trace_telemetry_refused_in_parallel(self):
        specs = self.telemetry_grid(trace=True)
        with pytest.raises(ValueError, match="trace-timeline"):
            execute(specs, jobs=2)

    def test_trace_telemetry_allowed_serially(self):
        # Two passes so evicted pages are re-faulted: a single pass
        # never revisits a page and leaves nothing on the timeline.
        spec = RunSpec(
            workload="stream-simple",
            system="hopp",
            fraction=0.25,
            seed=3,
            workload_kwargs={"npages": 64, "passes": 2},
            fabric=quiet_fabric(3),
            telemetry=TelemetryConfig(trace=True),
        )
        result = execute([spec], jobs=1)[0]
        assert result.telemetry is not None
        assert result.telemetry["trace_events"]

    def test_refusal_names_the_offending_specs(self):
        specs = grid()
        specs[2].telemetry = TelemetryConfig(trace=True)
        with pytest.raises(ValueError, match=specs[2].label()):
            execute(specs, jobs=2)


class TestSweepOnEngine:
    def test_parallel_sweep_equals_serial_sweep(self):
        kwargs = dict(
            workloads=["stream-simple"],
            systems=["fastswap", "hopp"],
            fractions=[0.25, 0.5],
            seed=3,
            fabric=quiet_fabric(3),
            workload_kwargs={"stream-simple": dict(SMALL)},
        )
        serial = sweep(**kwargs)
        parallel = sweep(jobs=2, **kwargs)
        assert serial.points == parallel.points
        for point in serial.points:
            assert (
                parallel.results[point].to_dict(full=True)
                == serial.results[point].to_dict(full=True)
            )
        assert serial.ct_local == parallel.ct_local

    def test_cached_sweep_equals_fresh_sweep(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(
            workloads=["stream-simple"],
            systems=["fastswap"],
            fractions=[0.5],
            seed=3,
            fabric=quiet_fabric(3),
            workload_kwargs={"stream-simple": dict(SMALL)},
        )
        fresh = sweep(**kwargs)
        sweep(cache=cache, **kwargs)  # populate
        warm = sweep(cache=cache, **kwargs)
        assert cache.hits > 0
        point = SweepPoint("stream-simple", "fastswap", 0.5, 3)
        assert (
            warm.results[point].to_dict(full=True)
            == fresh.results[point].to_dict(full=True)
        )
