"""Tests for the HMTT trace-capture emulation."""

import pytest

from repro.memsim.controller import MemoryController
from repro.trace.hmtt import HmttTracer, TraceRing, replay


class TestTraceRing:
    def test_push_and_drain(self):
        ring = TraceRing(capacity=4)
        from repro.common.types import TraceRecord

        for i in range(3):
            ring.push(TraceRecord(i, i, False, i << 12), float(i))
        assert len(ring) == 3
        records = ring.drain()
        assert [r.seq for r in records] == [0, 1, 2]
        assert len(ring) == 0

    def test_overflow_drops_oldest(self):
        from repro.common.types import TraceRecord

        ring = TraceRing(capacity=2)
        for i in range(5):
            ring.push(TraceRecord(i, i, False, 0), float(i))
        assert ring.dropped == 3
        assert ring.produced == 5
        assert [r.seq for r in ring.drain()] == [3, 4]

    def test_drain_limit(self):
        from repro.common.types import TraceRecord

        ring = TraceRing()
        for i in range(10):
            ring.push(TraceRecord(i, 0, False, 0), 0.0)
        first = ring.drain(limit=4)
        assert [r.seq for r in first] == [0, 1, 2, 3]
        assert len(ring) == 6

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)


class TestHmttTracer:
    def test_records_mc_accesses(self):
        mc = MemoryController()
        tracer = HmttTracer()
        tracer.attach(mc)
        mc.access(1.5, 0x5040, is_write=False)
        mc.access(2.5, 0x6040, is_write=True)
        records = tracer.ring.drain()
        assert len(records) == 2
        assert records[0].paddr == 0x5040
        assert records[0].ppn == 5
        assert not records[0].is_write
        assert records[1].is_write

    def test_sequence_number_wraps_at_8_bits(self):
        tracer = HmttTracer(ring=TraceRing(capacity=600))
        for i in range(300):
            tracer.on_access(float(i), i << 12, False)
        records = tracer.ring.drain()
        assert records[255].seq == 255
        assert records[256].seq == 0  # 8-bit wrap, like the hardware

    def test_timestamp_wraps_at_8_bits(self):
        tracer = HmttTracer()
        tracer.on_access(300.0, 0, False)
        record = tracer.ring.drain()[0]
        assert record.timestamp == 300 % 256

    def test_reads_only_filter(self):
        tracer = HmttTracer(reads_only=True)
        tracer.on_access(0.0, 0x40, True)
        tracer.on_access(0.0, 0x40, False)
        assert len(tracer.ring) == 1

    def test_sink_receives_records_immediately(self):
        seen = []
        tracer = HmttTracer(sink=lambda rec, ts: seen.append((rec.paddr, ts)))
        tracer.on_access(7.0, 0x1000, False)
        assert seen == [(0x1000, 7.0)]

    def test_replay_yields_ppns(self):
        tracer = HmttTracer()
        tracer.on_access(0.0, 0x3000, False)
        tracer.on_access(0.0, 0x4000, False)
        assert list(replay(tracer.ring.drain())) == [3, 4]
