"""Tests for the tenant-scale scenario engine.

Covers the four scenario subsystems in isolation — arrival patterns,
SLO tracking, the admission/degradation ladder, the autoscaler — and
then the composed engine: overload plus a crash during peak must
complete with no unhandled exception, every shed action counted, and
page accounting conserved under the invariant sanitizer.
"""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.scenario import (
    LEVEL_DEGRADE,
    LEVEL_NOMINAL,
    LEVEL_REJECT,
    LEVEL_THROTTLE,
    AdmissionController,
    AdmissionRejectedError,
    Autoscaler,
    AutoscalerConfig,
    LadderConfig,
    ScenarioConfig,
    SloTarget,
    SloTracker,
    TenantSpec,
    build_fleet,
    intensity,
    pattern_names,
    preset,
    run_scenario,
)
from repro.scenario.traffic import TIER_BEST_EFFORT, TIER_GUARANTEED
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.telemetry.events import EV_DEMAND_FAULT
from repro.cluster.cluster import ClusterConfig
from repro.cluster.health import NodeState


# -- traffic: patterns and fleets -------------------------------------------------------


class TestPatterns:
    def test_registry_has_the_documented_shapes(self):
        assert {"steady", "diurnal", "bursty", "flash"} <= set(pattern_names())

    def test_intensity_is_deterministic(self):
        for pattern in pattern_names():
            a = [intensity(pattern, 42, rnd, 10) for rnd in range(10)]
            b = [intensity(pattern, 42, rnd, 10) for rnd in range(10)]
            assert a == b

    def test_intensity_streams_are_per_tenant_independent(self):
        # Tenant 7's bursty schedule must not depend on whether tenant 8
        # exists — the draws are keyed on (tenant seed, round) alone.
        before = [intensity("bursty", 7, rnd, 8) for rnd in range(8)]
        _ = [intensity("bursty", 8, rnd, 8) for rnd in range(8)]
        after = [intensity("bursty", 7, rnd, 8) for rnd in range(8)]
        assert before == after

    def test_intensity_bounded(self):
        for pattern in pattern_names():
            for seed in (1, 13, 97):
                for rnd in range(12):
                    value = intensity(pattern, seed, rnd, 12)
                    assert 0.0 <= value <= 1.0

    def test_flash_spikes_past_midrun(self):
        rounds = 12
        series = [intensity("flash", 5, rnd, rounds) for rnd in range(rounds)]
        peak = series.index(max(series))
        assert peak >= rounds // 2
        assert max(series) == 1.0
        assert min(series) > 0.0

    def test_unknown_pattern_rejected(self):
        with pytest.raises(KeyError):
            intensity("nope", 1, 0, 8)


class TestFleet:
    def test_fleet_is_deterministic(self):
        assert build_fleet(9, seed=3) == build_fleet(9, seed=3)

    def test_tier_interleave_matches_fraction(self):
        fleet = build_fleet(10, best_effort_fraction=0.5)
        tiers = [spec.tier for spec in fleet]
        assert tiers.count(TIER_BEST_EFFORT) == 5
        # Evenly spread, not front- or back-loaded.
        assert tiers[:2].count(TIER_BEST_EFFORT) == 1

    def test_all_guaranteed_fleet(self):
        fleet = build_fleet(4, best_effort_fraction=0.0)
        assert all(spec.tier == TIER_GUARANTEED for spec in fleet)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="x", tier="gold")
        with pytest.raises(ValueError):
            TenantSpec(name="x", pattern="nope")
        with pytest.raises(ValueError):
            TenantSpec(name="x", start_round=-1)


# -- SLO tracker ------------------------------------------------------------------------


def _fault(tracker, ts_us, pid, cost_us, zero_filled=False):
    tracker.on_event(
        EV_DEMAND_FAULT,
        ts_us,
        {"pid": pid, "vpn": 1, "wait_us": cost_us, "cost_us": cost_us,
         "zero_filled": zero_filled},
    )


class TestSloTracker:
    def tracker(self, **kwargs):
        return SloTracker(
            epoch_us=100.0,
            tenant_of=lambda pid: pid // 100,
            targets={0: SloTarget(p99_us=50.0, max_lost=0)},
            **kwargs,
        )

    def test_epoch_attainment_splits_on_target(self):
        tracker = self.tracker()
        _fault(tracker, 10.0, pid=0, cost_us=5.0)      # epoch 0: fast
        _fault(tracker, 150.0, pid=0, cost_us=500.0)   # epoch 1: slow
        assert tracker.epoch_attained(0, 0)
        assert not tracker.epoch_attained(0, 1)
        assert tracker.attainment(0) == 0.5

    def test_lost_page_breaks_the_epoch(self):
        tracker = self.tracker()
        _fault(tracker, 10.0, pid=0, cost_us=5.0, zero_filled=True)
        assert tracker.lost_pages(0) == 1
        assert not tracker.epoch_attained(0, 0)

    def test_idle_tenant_attains_vacuously(self):
        assert self.tracker().attainment(99) == 1.0

    def test_non_fault_events_ignored(self):
        tracker = self.tracker()
        tracker.on_event("prefetch_issue", 1.0, {"pid": 0})
        assert tracker.events_seen == 0

    def test_export_is_json_shaped(self):
        import json

        tracker = self.tracker()
        _fault(tracker, 10.0, pid=0, cost_us=5.0)
        _fault(tracker, 10.0, pid=100, cost_us=500.0)
        out = json.loads(json.dumps(tracker.export()))
        assert out["events"] == 2
        assert out["tenants"]["0"]["attainment"] == 1.0
        assert out["tenants"]["1"]["attainment"] == 0.0


# -- admission controller / degradation ladder ------------------------------------------


def _tenants():
    return {
        0: TenantSpec(name="guar", tier=TIER_GUARANTEED),
        1: TenantSpec(name="be", tier=TIER_BEST_EFFORT),
    }


class TestLadder:
    def controller(self, **kwargs):
        config = LadderConfig(**kwargs) if kwargs else LadderConfig()
        controller = AdmissionController(config)
        controller.attach_pid_stride(100)
        for index, spec in _tenants().items():
            controller.register(index, spec)
        return controller

    def test_climbs_one_rung_per_update(self):
        controller = self.controller()
        levels = [controller.update(2.0, now_us=t * 10.0) for t in range(5)]
        assert levels == [
            LEVEL_THROTTLE, LEVEL_REJECT, LEVEL_DEGRADE, LEVEL_DEGRADE,
            LEVEL_DEGRADE,
        ]

    def test_shedding_order_softest_first(self):
        controller = self.controller()
        controller.update(2.0, now_us=0.0)
        # Rung 1: prefetch throttled, admissions still open.
        assert controller.throttle_trips > 0
        controller.admit(7, TenantSpec(name="late"), now_us=1.0)
        # Rung 2: admissions rejected, nobody degraded yet.
        controller.update(2.0, now_us=2.0)
        with pytest.raises(AdmissionRejectedError):
            controller.admit(8, TenantSpec(name="later"), now_us=3.0)
        assert not controller.degraded_tenants()
        # Rung 3: best-effort degraded.
        controller.update(2.0, now_us=4.0)
        assert controller.degraded_tenants() == {1}

    def test_descent_needs_consecutive_calm(self):
        controller = self.controller(calm_updates=2)
        controller.update(2.0, now_us=0.0)
        assert controller.level == LEVEL_THROTTLE
        controller.update(0.1, now_us=1.0)
        assert controller.level == LEVEL_THROTTLE  # one calm is not enough
        controller.update(0.7, now_us=2.0)         # mid-band resets calm
        controller.update(0.1, now_us=3.0)
        assert controller.level == LEVEL_THROTTLE
        controller.update(0.1, now_us=4.0)
        assert controller.level == LEVEL_NOMINAL

    def test_guaranteed_never_degraded(self):
        controller = self.controller()
        for t in range(6):
            controller.update(5.0, now_us=t * 10.0)
        assert controller.level == LEVEL_DEGRADE
        assert 0 not in controller.degraded_tenants()
        assert controller.slice_factor(0) == 1.0
        assert controller.slice_factor(1) == 0.5

    def test_restoration_counted_on_descent(self):
        controller = self.controller(calm_updates=1)
        for t in range(3):
            controller.update(2.0, now_us=float(t))
        assert controller.degradations == 1
        controller.update(0.0, now_us=10.0)  # degrade -> reject: restored
        assert controller.restorations == 1
        assert not controller.degraded_tenants()

    def test_rejection_is_typed_and_counted(self):
        controller = self.controller()
        controller.update(2.0, now_us=0.0)
        controller.update(2.0, now_us=1.0)
        spec = TenantSpec(name="newcomer")
        with pytest.raises(AdmissionRejectedError) as info:
            controller.admit(9, spec, now_us=2.0)
        assert info.value.tenant == "newcomer"
        assert info.value.level == LEVEL_REJECT
        assert controller.rejections == 1
        assert controller.rejections_by_tenant == {"newcomer": 1}
        # A rejected tenant holds no breaker: it was never registered.
        assert controller.prefetch_gate(900, "t1", 3.0)

    def test_throttle_gates_best_effort_prefetch(self):
        controller = self.controller()
        controller.update(2.0, now_us=0.0)
        # Tenant 1 (pids 100..199) is best-effort: breaker open.
        assert not controller.prefetch_gate(101, "t1", 1.0)
        # Guaranteed tenant 0 keeps prefetching.
        assert controller.prefetch_gate(1, "t1", 1.0)

    def test_export_counts_transitions(self):
        controller = self.controller()
        controller.update(2.0, now_us=0.0)
        out = controller.export()
        assert out["level"] == LEVEL_THROTTLE
        assert out["transitions"] == [[1, 0, 1]]

    def test_ladder_config_validation(self):
        with pytest.raises(ValueError):
            LadderConfig(enter=0.5, exit=0.5)
        with pytest.raises(ValueError):
            LadderConfig(degrade_slice_factor=0.0)


# -- autoscaler -------------------------------------------------------------------------


def _armed_machine(nodes=3, standby=1):
    machine = Machine(
        MachineConfig(
            local_memory_pages=64,
            fault_plan=FaultPlan(),
            cluster=ClusterConfig(nodes=nodes),
        )
    )
    machine.register_process(0)
    machine.add_vma(0, 0, 64, "heap")
    for node_id in range(nodes - standby, nodes):
        machine.health.retire(node_id)
    return machine


class TestAutoscaler:
    def test_requires_armed_recovery(self):
        machine = Machine(MachineConfig(local_memory_pages=64))
        with pytest.raises(RuntimeError):
            Autoscaler(machine)

    def test_scale_out_activates_standby(self):
        machine = _armed_machine(nodes=3, standby=1)
        scaler = Autoscaler(
            machine, AutoscalerConfig(sustain_rounds=2, cooldown_rounds=0)
        )
        assert scaler.active_nodes() == [0, 1]
        assert scaler.standby_nodes() == [2]
        assert scaler.observe(5.0, rnd=0) is None      # one hot round
        assert scaler.observe(5.0, rnd=1) == "scale_out"
        assert scaler.active_nodes() == [0, 1, 2]
        assert machine.health.is_placeable(2)
        assert scaler.events == [[1, "scale_out", 2]]

    def test_scale_out_without_standby_is_noop(self):
        machine = _armed_machine(nodes=2, standby=0)
        scaler = Autoscaler(
            machine, AutoscalerConfig(sustain_rounds=1, cooldown_rounds=0)
        )
        assert scaler.observe(5.0, rnd=0) is None
        assert scaler.scale_outs == 0

    def test_scale_in_drains_to_standby(self):
        machine = _armed_machine(nodes=3, standby=1)
        scaler = Autoscaler(
            machine, AutoscalerConfig(sustain_rounds=1, cooldown_rounds=0)
        )
        assert scaler.observe(0.0, rnd=0) == "scale_in"
        assert machine.health.state(1) is NodeState.DRAINING
        machine.flush_recovery()
        # Empty node: the drain completes instantly and parks in standby
        # instead of rejoining placement.
        assert machine.health.is_standby(1)
        assert not machine.health.is_placeable(1)
        assert scaler.active_nodes() == [0]

    def test_min_active_floor_counts_only_undraining_nodes(self):
        machine = _armed_machine(nodes=3, standby=1)
        scaler = Autoscaler(
            machine,
            AutoscalerConfig(sustain_rounds=1, cooldown_rounds=0,
                             min_active=1),
        )
        assert scaler.observe(0.0, rnd=0) == "scale_in"
        # Node 1 may still be draining; node 0 is the last UP node and
        # must never be retired.
        assert scaler.observe(0.0, rnd=1) is None
        assert scaler.scale_ins == 1

    def test_cooldown_suppresses_flapping(self):
        machine = _armed_machine(nodes=4, standby=2)
        scaler = Autoscaler(
            machine, AutoscalerConfig(sustain_rounds=1, cooldown_rounds=2)
        )
        assert scaler.observe(5.0, rnd=0) == "scale_out"
        assert scaler.observe(5.0, rnd=1) is None   # cooling
        assert scaler.observe(5.0, rnd=2) is None   # cooling
        assert scaler.observe(5.0, rnd=3) == "scale_out"

    def test_mid_band_pressure_resets_streaks(self):
        machine = _armed_machine(nodes=3, standby=1)
        scaler = Autoscaler(
            machine, AutoscalerConfig(sustain_rounds=2, cooldown_rounds=0)
        )
        assert scaler.observe(5.0, rnd=0) is None
        assert scaler.observe(0.5, rnd=1) is None   # neither hot nor calm
        assert scaler.observe(5.0, rnd=2) is None   # streak restarted
        assert scaler.observe(5.0, rnd=3) == "scale_out"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(out_pressure=0.2, in_pressure=0.2)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_active=0)


# -- the composed engine ----------------------------------------------------------------


def _quiet(**overrides):
    base = dict(
        name="test",
        tenants=tuple(build_fleet(4, seed=5, rounds=4, pages_per_tenant=80)),
        rounds=4,
        accesses_per_round=800,
        remote_nodes=2,
        standby_nodes=1,
        fabric=FabricConfig(gbps=56.0, jitter_us=0.0, spike_probability=0.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestEngine:
    def test_scenario_attaches_result_section(self):
        result = run_scenario(_quiet())
        section = result.scenario
        assert section is not None
        assert section["admitted"] == 4
        assert section["conservation"]["cluster_conserved"]
        assert section["conservation"]["invariant_checks"] > 0
        assert len(section["series"]) == 4
        assert section["slo"]["events"] > 0

    def test_scenario_section_round_trips(self):
        import json

        result = run_scenario(_quiet())
        wire = json.loads(json.dumps(result.to_dict(full=True)))
        revived = RunResult.from_dict(wire)
        assert revived.scenario == result.scenario

    def test_plain_results_have_no_scenario_section(self):
        from repro.sim import runner
        from repro.workloads import build

        result = runner.run(
            build("stream-simple", seed=3, npages=64, passes=1), "hopp", 0.5
        )
        assert result.scenario is None
        assert "scenario" not in result.to_dict(full=True)

    def test_scenario_is_deterministic(self):
        a = run_scenario(_quiet()).scenario
        b = run_scenario(_quiet()).scenario
        assert a == b

    def test_overload_with_crash_during_peak_completes(self):
        # The acceptance scenario: saturating fleet, narrow fabric, a
        # node crash mid-peak.  Must complete with no unhandled
        # exception, shed load through the ladder in order, count every
        # rejection, and conserve page accounting.
        config = _quiet(
            tenants=tuple(
                build_fleet(8, seed=9, rounds=6, pages_per_tenant=100)
            ),
            rounds=6,
            accesses_per_round=2500,
            replication=2,
            fabric=FabricConfig(gbps=1.0),
            fault_plan=FaultPlan.crash(seed=4, at_us=4_000.0),
        )
        result = run_scenario(config)
        section = result.scenario
        admission = section["admission"]
        # The ladder engaged and is the reason admissions were refused.
        assert admission["level"] >= LEVEL_THROTTLE
        assert admission["throttle_trips"] > 0
        assert section["shedding"]["prefetch_throttled"] > 0
        # Every deferred arrival corresponds to a counted rejection.
        assert section["deferrals"] == admission["rejections"]
        assert (
            sum(admission["rejections_by_tenant"].values())
            == admission["rejections"]
        )
        # The crash was observed and survived.
        assert result.node_crashes == 1
        assert section["conservation"]["cluster_conserved"]
        assert section["conservation"]["invariant_checks"] > 0

    def test_degraded_tier_is_best_effort_only(self):
        config = _quiet(
            tenants=tuple(
                build_fleet(6, seed=11, rounds=5, pages_per_tenant=100,
                            staggered=False)
            ),
            rounds=5,
            accesses_per_round=2500,
            fabric=FabricConfig(gbps=0.5),
        )
        result = run_scenario(config)
        admission = result.scenario["admission"]
        if admission["degradations"]:
            guaranteed = {
                index
                for index, spec in enumerate(config.tenants)
                if spec.tier == TIER_GUARANTEED
            }
            # Degraded pid count covers only best-effort tenants.
            degraded_pids = result.scenario["shedding"]["deprioritized_pids"]
            assert degraded_pids <= (len(config.tenants) - len(guaranteed)) * 100

    def test_presets_build(self):
        for name in ("smoke", "burst", "diurnal", "flash"):
            config = preset(name)
            assert config.tenants
        with pytest.raises(KeyError):
            preset("nope")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _quiet(rounds=0)
        with pytest.raises(ValueError):
            _quiet(remote_nodes=1, replication=2)
        with pytest.raises(ValueError):
            ScenarioConfig(name="empty", tenants=())
