"""Tests for the Reverse Page Table and its MC cache (Section III-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import PageKind, RptEntry
from repro.hopp.rpt import (
    ReversePageTable,
    RptCache,
    RptMaintainer,
    rpt_bandwidth_overhead,
)
from repro.kernel.page_table import PageTable


class TestReversePageTable:
    def test_read_write(self):
        rpt = ReversePageTable()
        rpt.write(5, RptEntry(pid=1, vpn=100))
        entry = rpt.read(5)
        assert entry.pid == 1 and entry.vpn == 100

    def test_write_none_deletes(self):
        rpt = ReversePageTable()
        rpt.write(5, RptEntry(1, 100))
        rpt.write(5, None)
        assert rpt.read(5) is None
        assert 5 not in rpt

    def test_size_is_0_17_percent_of_memory(self):
        """Section III-C: 64 GB needs ~112 MB of RPT (8 B per 4 KB)."""
        pages_64gb = (64 << 30) // 4096
        size = ReversePageTable.size_bytes(pages_64gb)
        assert size == pages_64gb * 8
        assert size / (64 << 30) == pytest.approx(0.0017, abs=0.0003)


class TestRptCache:
    def make(self, size_kb=1, ways=4):
        backing = ReversePageTable()
        return backing, RptCache(backing, size_kb=size_kb, ways=ways)

    def test_miss_fills_from_dram(self):
        backing, cache = self.make()
        backing.write(7, RptEntry(1, 70))
        entry = cache.lookup(7)
        assert entry.vpn == 70
        assert cache.dram_fills == 1
        # Second lookup hits the cache.
        cache.lookup(7)
        assert cache.dram_fills == 1
        assert cache.hit_rate == 0.5

    def test_unknown_frame_returns_none_and_caches_negative(self):
        _, cache = self.make()
        assert cache.lookup(99) is None
        assert cache.lookup(99) is None
        assert cache.dram_fills == 1  # negative entry cached too

    def test_update_is_write_allocate(self):
        backing, cache = self.make()
        cache.update(3, RptEntry(1, 30))
        # Not yet in DRAM: write-back is lazy (Section V).
        assert backing.read(3) is None
        assert cache.lookup(3).vpn == 30

    def test_dirty_writeback_on_eviction(self):
        backing, cache = self.make(size_kb=1, ways=1)
        nsets = (1 * 1024) // 8  # 128 sets, 1 way
        cache.update(0, RptEntry(1, 10))
        cache.update(nsets, RptEntry(1, 20))  # same set -> evicts ppn 0
        assert backing.read(0).vpn == 10
        assert cache.writebacks == 1

    def test_flush_writes_all_dirty(self):
        backing, cache = self.make()
        cache.update(1, RptEntry(1, 11))
        cache.update(2, RptEntry(1, 22))
        cache.flush()
        assert backing.read(1).vpn == 11
        assert backing.read(2).vpn == 22
        # A second flush writes nothing new.
        before = backing.writes
        cache.flush()
        assert backing.writes == before

    def test_larger_cache_higher_hit_rate(self):
        """Table III's trend: hit rate grows with cache size."""
        def run(size_kb):
            backing = ReversePageTable()
            for ppn in range(2000):
                backing.write(ppn, RptEntry(1, ppn))
            cache = RptCache(backing, size_kb=size_kb, ways=16)
            import random
            rng = random.Random(7)
            # Zipf-ish reuse: recent pages re-looked-up often.
            for _ in range(8000):
                ppn = int(2000 * rng.random() ** 3)
                cache.lookup(min(ppn, 1999))
            return cache.hit_rate

        assert run(1) < run(16) <= 1.0

    def test_too_small_cache_rejected(self):
        backing = ReversePageTable()
        with pytest.raises(ValueError):
            RptCache(backing, size_kb=0, ways=16)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_flush_makes_backing_match_updates(self, updates):
        """After a flush, DRAM holds the latest update for every PPN."""
        backing = ReversePageTable()
        cache = RptCache(backing, size_kb=1, ways=2)
        latest = {}
        for ppn, vpn in updates:
            cache.update(ppn, RptEntry(1, vpn))
            latest[ppn] = vpn
        cache.flush()
        for ppn, vpn in latest.items():
            assert backing.read(ppn).vpn == vpn


class TestRptMaintainer:
    def test_hooks_keep_cache_current(self):
        backing = ReversePageTable()
        cache = RptCache(backing, size_kb=1, ways=4)
        maintainer = RptMaintainer(cache)
        table = PageTable(pid=9)
        maintainer.attach(table)
        table.map_page(100, 5)
        assert cache.lookup(5).vpn == 100
        assert cache.lookup(5).pid == 9
        table.unmap_page(100)
        assert cache.lookup(5) is None
        assert maintainer.hook_updates == 2

    def test_seed_walks_existing_tables(self):
        backing = ReversePageTable()
        cache = RptCache(backing, size_kb=1, ways=4)
        maintainer = RptMaintainer(cache)
        table_a = PageTable(pid=1)
        table_a.map_page(10, 3)
        table_b = PageTable(pid=2)
        table_b.map_page(20, 4)
        written = maintainer.seed([table_a, table_b])
        assert written == 2
        assert cache.lookup(3).pid == 1
        assert cache.lookup(4).pid == 2

    def test_huge_and_shared_flags_forwarded(self):
        backing = ReversePageTable()
        cache = RptCache(backing, size_kb=1, ways=4)
        maintainer = RptMaintainer(cache)
        table = PageTable(pid=1)
        maintainer.attach(table)
        pte = table.entry(55)
        pte.kind = PageKind.HUGE_2M
        pte.shared = True
        table.map_page(55, 8)
        entry = cache.lookup(8)
        assert entry.kind == PageKind.HUGE_2M
        assert entry.shared


class TestBandwidth:
    def test_overhead_relative_to_mc_traffic(self):
        backing = ReversePageTable()
        cache = RptCache(backing, size_kb=1, ways=4)
        cache.lookup(1)  # one 8-byte fill
        overhead = rpt_bandwidth_overhead(cache, mc_accesses=1000)
        assert overhead == pytest.approx(8 / (1000 * 64))

    def test_zero_traffic(self):
        backing = ReversePageTable()
        cache = RptCache(backing, size_kb=1, ways=4)
        assert rpt_bandwidth_overhead(cache, 0) == 0.0
