"""Tests for the prefetch execution engine (Section III-F)."""

from typing import Dict, Optional, Tuple

import pytest

from repro.common.types import PrefetchRequest
from repro.hopp.executor import ExecutionEngine
from repro.hopp.policy import PolicyConfig, PolicyEngine


class FakeBackend:
    """Backend stub: remembers issued prefetches, configurable latency."""

    def __init__(self, latency_us: float = 4.0, reject=()):
        self.latency_us = latency_us
        self.reject = set(reject)
        self.issued = []

    def prefetch_page(self, pid, vpn, now_us, inject_pte, tier) -> Optional[float]:
        if (pid, vpn) in self.reject:
            return None
        self.issued.append((pid, vpn, inject_pte, tier))
        return now_us + self.latency_us


def request(vpn, tier="ssp", stream_id=0, at=0.0):
    return PrefetchRequest(pid=1, vpn=vpn, tier=tier, issued_at_us=at, stream_id=stream_id)


class TestSubmit:
    def test_issues_and_records(self):
        backend = FakeBackend()
        engine = ExecutionEngine(backend)
        sent = engine.submit([request(10), request(11)], now_us=0.0)
        assert sent == 2
        assert engine.issued == 2
        assert engine.outstanding == 2
        assert backend.issued[0] == (1, 10, True, "ssp")

    def test_duplicates_suppressed(self):
        engine = ExecutionEngine(FakeBackend())
        engine.submit([request(10)], 0.0)
        engine.submit([request(10)], 1.0)
        assert engine.duplicates == 1
        assert engine.issued == 1

    def test_rejected_pages_not_recorded(self):
        engine = ExecutionEngine(FakeBackend(reject={(1, 10)}))
        sent = engine.submit([request(10)], 0.0)
        assert sent == 0
        assert engine.rejected == 1
        assert engine.outstanding == 0

    def test_inject_flag_forwarded(self):
        backend = FakeBackend()
        engine = ExecutionEngine(backend, inject_pte=False)
        engine.submit([request(10)], 0.0)
        assert backend.issued[0][2] is False

    def test_issued_by_tier(self):
        engine = ExecutionEngine(FakeBackend())
        engine.submit([request(10, "ssp"), request(11, "lsp")], 0.0)
        assert engine.issued_by_tier == {"ssp": 1, "lsp": 1}


class TestHitsAndWaste:
    def test_first_hit_accounts_accuracy(self):
        engine = ExecutionEngine(FakeBackend(latency_us=4.0))
        engine.submit([request(10)], 0.0)
        engine.on_first_hit(1, 10, now_us=50.0)
        assert engine.hits == 1
        assert engine.accuracy == 1.0
        assert engine.outstanding == 0
        assert engine.hits_by_tier == {"ssp": 1}

    def test_timeliness_measured_from_arrival(self):
        engine = ExecutionEngine(FakeBackend(latency_us=4.0))
        engine.submit([request(10)], 0.0)
        engine.on_first_hit(1, 10, now_us=50.0)
        # T = 50 - (0 + 4) = 46.
        assert engine.timeliness.stat.mean == pytest.approx(46.0)

    def test_hit_before_arrival_clamps_to_zero(self):
        engine = ExecutionEngine(FakeBackend(latency_us=100.0))
        engine.submit([request(10)], 0.0)
        engine.on_first_hit(1, 10, now_us=5.0)
        assert engine.timeliness.stat.mean == 0.0

    def test_unknown_hit_ignored(self):
        engine = ExecutionEngine(FakeBackend())
        engine.on_first_hit(1, 999, 0.0)
        assert engine.hits == 0

    def test_eviction_counts_waste(self):
        engine = ExecutionEngine(FakeBackend())
        engine.submit([request(10), request(11)], 0.0)
        engine.on_evicted_unused(1, 10)
        assert engine.wasted == 1
        assert engine.outstanding == 1
        # Accuracy counts resident-unhit and wasted against issued.
        assert engine.accuracy == 0.0

    def test_policy_gets_timeliness_reports(self):
        policy = PolicyEngine(PolicyConfig(alpha=0.2, t_min_us=100.0))
        engine = ExecutionEngine(FakeBackend(latency_us=4.0), policy=policy)
        engine.submit([request(10, stream_id=7)], 0.0)
        engine.on_first_hit(1, 10, now_us=10.0)  # T=6 < 100 -> increase
        assert policy.offset_of(7) > 1.0

    def test_is_prefetched_unhit(self):
        engine = ExecutionEngine(FakeBackend())
        engine.submit([request(10)], 0.0)
        assert engine.is_prefetched_unhit(1, 10)
        engine.on_first_hit(1, 10, 1.0)
        assert not engine.is_prefetched_unhit(1, 10)

    def test_accuracy_zero_when_nothing_issued(self):
        assert ExecutionEngine(FakeBackend()).accuracy == 0.0
