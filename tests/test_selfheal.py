"""Self-healing cluster suite: health monitoring, permanent crashes,
background re-replication, drain, and the invariant sanitizer.

Proves the properties the recovery layer must hold:

* **acceptance** — a 3-node, replication=2 cluster that loses a node
  mid-run finishes with zero lost pages, a repaired directory at full
  replication, and a sanitizer that passes every epoch; the same crash
  at replication=1 loses pages but accounts for every one of them;
* **determinism** — recovery is a pure function of (plan, seed): two
  identical runs produce identical results down to the repair bytes;
* **state machine** — UP/SUSPECT/DOWN/DRAINING/REJOINING transitions
  fire exactly on observed timeouts, heartbeats, and drain completion;
* **no false losses** — a directory entry whose writeback never landed
  on the crashing node is re-routed, not declared lost;
* **sanitizer** — cross-layer corruption (directory, frames) raises a
  typed :class:`InvariantViolation` naming the broken structure.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    HealthConfig,
    HealthMonitor,
    NodeState,
    RemoteMemoryCluster,
    RepairConfig,
    RepairEngine,
)
from repro.cluster.health import EVENT_DOWN, EVENT_REJOIN
from repro.kernel.page_table import PteState
from repro.kernel.swap import SwapSpace
from repro.net.faults import FaultPlan
from repro.sim import runner
from repro.sim.machine import Machine, MachineConfig
from repro.sim.sanitizer import InvariantSanitizer, InvariantViolation
from repro.workloads import build
from tests.conftest import quiet_fabric, touch_pages

CRASH_US = 30_000.0
REJOIN_US = 50_000.0


def _armed_cluster(nodes=3, replication=1, plan=None, capacity=1024):
    """A cluster with injectors armed and a health monitor attached."""
    plan = plan or FaultPlan(seed=1, node_crash=(CRASH_US,))
    cluster = RemoteMemoryCluster(
        ClusterConfig(nodes=nodes, replication=replication),
        capacity,
        quiet_fabric(),
        fault_plan=plan,
    )
    cluster.health = HealthMonitor(cluster, HealthConfig())
    return cluster


def _machine(nodes=2, replication=1, plan=None, local_pages=16,
             check_invariants=False):
    machine = Machine(
        MachineConfig(
            local_memory_pages=local_pages,
            fabric=quiet_fabric(),
            watermark_slack=4,
            fault_plan=plan,
            cluster=ClusterConfig(nodes=nodes, replication=replication),
            check_invariants=check_invariants,
        )
    )
    machine.register_process(1)
    machine.add_vma(1, 0, 4096, "test")
    return machine


def _crash_machine(replication, rejoin=False, check_invariants=True):
    """The acceptance scenario: quicksort on hopp, 3 nodes, one
    permanent crash mid-run."""
    workload = build("quicksort", seed=1)
    plan = (
        FaultPlan.crash_rejoin(seed=1, at_us=CRASH_US, rejoin_us=REJOIN_US)
        if rejoin
        else FaultPlan.crash(seed=1, at_us=CRASH_US)
    )
    machine = runner.make_machine(
        workload,
        "hopp",
        0.5,
        quiet_fabric(),
        plan,
        ClusterConfig(nodes=3, replication=replication),
        check_invariants=check_invariants,
    )
    machine.run(workload.trace())
    machine.flush_recovery()
    return machine


# -- the health state machine ----------------------------------------------------------


class TestHealthMonitor:
    def test_timeouts_drive_up_to_suspect(self):
        cluster = _armed_cluster()
        monitor = cluster.health
        assert monitor.state(0) is NodeState.UP
        monitor.observe_timeout(0, 100.0)
        monitor.observe_timeout(0, 101.0)
        assert monitor.state(0) is NodeState.UP
        events = monitor.observe_timeout(0, 102.0)
        assert monitor.state(0) is NodeState.SUSPECT
        assert events == []  # probe ran: the node is not dead yet
        assert monitor.is_placeable(0)  # SUSPECT stays placeable

    def test_success_clears_suspect(self):
        cluster = _armed_cluster()
        monitor = cluster.health
        for _ in range(3):
            monitor.observe_timeout(0, 100.0)
        assert monitor.state(0) is NodeState.SUSPECT
        monitor.observe_success(0, 200.0)
        assert monitor.state(0) is NodeState.UP
        assert monitor._consecutive_timeouts[0] == 0

    def test_suspect_probe_confirms_crash(self):
        cluster = _armed_cluster()
        monitor = cluster.health
        for _ in range(2):
            monitor.observe_timeout(0, CRASH_US + 1)
        events = monitor.observe_timeout(0, CRASH_US + 2)
        assert events == [(EVENT_DOWN, 0)]
        assert monitor.state(0) is NodeState.DOWN
        assert monitor.node_crashes == 1
        assert not monitor.is_placeable(0)
        assert not monitor.is_readable(0)

    def test_heartbeat_detects_crash_without_traffic(self):
        # No data-path observation at all: the periodic probe alone
        # notices the crash.
        cluster = _armed_cluster()
        monitor = cluster.health
        assert monitor.tick(CRASH_US - 1) == []
        events = monitor.tick(CRASH_US + 600.0)
        assert events == [(EVENT_DOWN, 0)]
        # Only the node struck by crash index 0 goes down.
        assert monitor.state(1) is NodeState.UP
        assert monitor.state(2) is NodeState.UP

    def test_heartbeat_is_rate_limited(self):
        cluster = _armed_cluster()
        monitor = cluster.health
        monitor.tick(0.0)
        # Within the interval the probe does not run, even past the crash.
        assert monitor.tick(400.0) == []
        assert monitor.state(0) is NodeState.UP

    def test_rejoin_lifecycle(self):
        plan = FaultPlan(seed=1, node_crash=(CRASH_US,), node_rejoin=(REJOIN_US,))
        cluster = _armed_cluster(plan=plan)
        monitor = cluster.health
        assert monitor.tick(CRASH_US + 600.0) == [(EVENT_DOWN, 0)]
        events = monitor.tick(REJOIN_US + 600.0)
        assert events == [(EVENT_REJOIN, 0)]
        assert monitor.state(0) is NodeState.REJOINING
        assert monitor.node_rejoins == 1
        # The next heartbeat re-admits it.
        monitor.tick(REJOIN_US + 1200.0)
        assert monitor.state(0) is NodeState.UP

    def test_drain_requires_a_live_node(self):
        cluster = _armed_cluster()
        monitor = cluster.health
        monitor.tick(CRASH_US + 600.0)
        with pytest.raises(ValueError, match="cannot drain"):
            monitor.start_drain(0, CRASH_US + 700.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(heartbeat_interval_us=0.0)
        with pytest.raises(ValueError):
            HealthConfig(suspect_after_timeouts=0)


# -- the repair engine -----------------------------------------------------------------


def _stored(cluster, slot, pid, vpn):
    """Writeback ``slot`` through the directory (all replicas)."""
    for node in cluster.assign(slot, pid, vpn):
        node.remote.write(slot, pid, vpn)


class TestRepairEngine:
    def _engine(self, cluster, swap=None):
        return RepairEngine(
            cluster, cluster.health, swap or SwapSpace(), RepairConfig()
        )

    def test_replica_survives_a_crash(self):
        cluster = _armed_cluster(nodes=3, replication=2)
        swap = SwapSpace()
        slot = swap.allocate(1, 100)
        _stored(cluster, slot, 1, 100)
        primary = cluster.holders_of(slot)[0]
        assert cluster.health.tick(CRASH_US + 600.0) == [(EVENT_DOWN, 0)]
        repair = self._engine(cluster, swap)
        repair.on_node_down(0, CRASH_US + 600.0)
        if primary == 0 or 0 in cluster.holders_of(slot):
            pass  # directory already scrubbed below
        assert 0 not in cluster.holders_of(slot)
        assert repair.pages_lost == 0
        repair.flush(CRASH_US + 700.0)
        holders = cluster.holders_of(slot)
        assert len(holders) == 2 and 0 not in holders
        for node_id in holders:
            assert cluster.nodes[node_id].remote.holds(slot)
        assert repair.pages_repaired >= 1
        assert repair.repair_bytes > 0
        assert cluster.conserved()

    def test_single_copy_on_dead_node_is_lost(self):
        cluster = _armed_cluster(nodes=3, replication=1)
        swap = SwapSpace()
        # interleave: slot 0 -> node 0 (the crashing node).
        slot = swap.allocate(1, 100)
        _stored(cluster, slot, 1, 100)
        assert cluster.holders_of(slot) == (0,)
        cluster.health.tick(CRASH_US + 600.0)
        repair = self._engine(cluster, swap)
        repair.on_node_down(0, CRASH_US + 600.0)
        assert repair.pages_lost == 1
        assert cluster.is_lost(slot)
        assert cluster.holders_of(slot) == ()
        assert cluster.nodes[0].remote.pages_stored == 0
        assert cluster.conserved()  # the wipe counts as pages_lost

    def test_unlanded_writeback_is_not_declared_lost(self):
        # Directory entry exists, but the node died before the WRITE
        # landed: the page is still local, so dropping the entry (and
        # letting the writeback re-route) is the correct outcome.
        cluster = _armed_cluster(nodes=3, replication=1)
        cluster.assign(0, 1, 100)  # entry only; no store write
        cluster.health.tick(CRASH_US + 600.0)
        repair = self._engine(cluster)
        repair.on_node_down(0, CRASH_US + 600.0)
        assert repair.pages_lost == 0
        assert not cluster.is_lost(0)
        assert cluster.holders_of(0) == ()

    def test_pump_is_rate_limited(self):
        cluster = _armed_cluster(nodes=3, replication=2)
        swap = SwapSpace()
        slots = []
        for vpn in (100, 101, 102):
            slot = swap.allocate(1, vpn)
            _stored(cluster, slot, 1, vpn)
            slots.append(slot)
        cluster.health.tick(CRASH_US + 600.0)
        repair = self._engine(cluster, swap)
        repair.on_node_down(0, CRASH_US + 600.0)
        queued = repair.pending_tasks
        assert queued >= 1
        now = CRASH_US + 700.0
        repair.pump(now)
        # A second pump at the same instant is inside the spacing window.
        repair.pump(now)
        assert repair.pending_tasks == queued - 1
        repair.pump(now + RepairConfig().repair_interval_us)
        assert repair.pending_tasks == max(queued - 2, 0)

    def test_drain_evacuates_copy_then_release(self):
        cluster = _armed_cluster(nodes=3, replication=1, plan=FaultPlan())
        swap = SwapSpace()
        moved = []
        for vpn in (100, 103):  # slots 0 and 1 -> nodes 0 and 1
            slot = swap.allocate(1, vpn)
            _stored(cluster, slot, 1, vpn)
            moved.append(slot)
        assert cluster.holders_of(moved[0]) == (0,)
        monitor = cluster.health
        monitor.start_drain(0, 10.0)
        repair = self._engine(cluster, swap)
        repair.on_drain(0)
        repair.flush(20.0)
        assert cluster.nodes[0].remote.pages_stored == 0
        assert repair.pages_drained == 1
        holders = cluster.holders_of(moved[0])
        assert holders and 0 not in holders
        assert cluster.nodes[holders[0]].remote.holds(moved[0])
        # The emptied node finished its drain and is rejoining.
        assert monitor.state(0) is NodeState.REJOINING
        assert monitor.drains_completed == 1
        assert cluster.conserved()


# -- machine-level recovery ------------------------------------------------------------


class TestMachineRecovery:
    def test_lost_page_is_zero_filled(self):
        # Crash far in the future, populate remote memory, then jump
        # time past the crash: the next touch of a page whose only copy
        # lived on the dead node must zero-fill, not hang or crash.
        plan = FaultPlan(seed=1, node_crash=(1e9,))
        machine = _machine(nodes=2, replication=1, plan=plan)
        touch_pages(machine, 1, range(64))
        table = machine.page_table(1)
        victim = next(
            vpn
            for vpn in range(64)
            if table.peek(vpn) is not None
            and table.peek(vpn).state == PteState.REMOTE
            and machine.cluster.holders_of(table.peek(vpn).swap_slot) == (0,)
        )
        machine.now_us = 1e9 + 600.0
        machine.access(1, victim << 12)
        assert machine.health.node_crashes == 1
        assert machine.pages_zero_filled == 1
        assert machine.repair.pages_lost > 0
        assert table.peek(victim).state == PteState.PRESENT
        assert machine.cluster.conserved()
        InvariantSanitizer(machine).check()

    def test_drain_empties_a_node_and_readmits_it(self):
        # An *empty* fault plan arms drain without injecting anything.
        machine = _machine(nodes=2, replication=1, plan=FaultPlan())
        touch_pages(machine, 1, range(64))
        assert machine.cluster.nodes[0].remote.pages_stored > 0
        machine.drain_node(0)
        machine.flush_recovery()
        assert machine.cluster.nodes[0].remote.pages_stored == 0
        assert machine.repair.pages_drained > 0
        assert machine.health.state(0) is NodeState.UP
        for slot in machine.cluster.slots_in_directory():
            assert 0 not in machine.cluster.holders_of(slot)
        assert machine.cluster.conserved()
        InvariantSanitizer(machine).check()

    def test_drain_requires_armed_recovery(self):
        machine = _machine(nodes=2, plan=None)
        with pytest.raises(RuntimeError, match="not armed"):
            machine.drain_node(0)

    def test_writeback_dead_end_falls_back_to_backoff_retry(self):
        # Replication spans every node, so a writeback that finds its
        # target restarting has nowhere to re-route: it must fall back
        # to backoff-retry on the same node and eventually land.
        plan = FaultPlan(seed=1, remote_restart=((0.0, 2_000.0),))
        machine = _machine(nodes=2, replication=2, plan=plan)
        touch_pages(machine, 1, range(64))
        assert machine.retries > 0
        assert machine.cluster.writeback_reroutes == 0
        assert machine.cluster.conserved()
        # Pages written back during the window still reached both nodes.
        for slot in machine.cluster.slots_in_directory():
            assert len(machine.cluster.holders_of(slot)) == 2


# -- acceptance: the ISSUE's crash scenarios -------------------------------------------


class TestCrashAcceptance:
    def test_replicated_cluster_loses_nothing(self):
        machine = _crash_machine(replication=2)
        assert machine.health.node_crashes == 1
        assert machine.repair.pages_lost == 0
        assert machine.pages_zero_filled == 0
        assert machine.repair.pages_repaired > 0
        assert machine.repair.repair_bytes > 0
        assert machine.cluster.conserved()
        # Full replication restored for every directory slot, with no
        # copy left on (or credited to) the dead node.
        assert machine.cluster.nodes[0].remote.pages_stored == 0
        for slot in machine.cluster.slots_in_directory():
            holders = machine.cluster.holders_of(slot)
            assert len(holders) == 2 and 0 not in holders
            for node_id in holders:
                assert machine.cluster.nodes[node_id].remote.holds(slot)
        # The sanitizer ran every epoch and after every recovery event.
        assert machine.sanitizer.checks_run > 0

    def test_unreplicated_cluster_accounts_for_every_loss(self):
        machine = _crash_machine(replication=1)
        assert machine.health.node_crashes == 1
        assert machine.repair.pages_lost > 0
        assert machine.pages_zero_filled > 0
        assert machine.cluster.conserved()
        assert machine.sanitizer.checks_run > 0

    def test_rejoined_node_is_readmitted(self):
        machine = _crash_machine(replication=2, rejoin=True)
        assert machine.health.node_crashes == 1
        assert machine.health.node_rejoins == 1
        assert machine.health.state(0) is NodeState.UP
        assert machine.repair.pages_lost == 0
        assert machine.cluster.conserved()

    def test_recovery_is_deterministic(self):
        results = []
        for _ in range(2):
            machine = _crash_machine(replication=2, check_invariants=False)
            results.append(
                runner.collect(machine, "hopp", "quicksort").to_dict()
            )
        assert results[0] == results[1]


# -- the invariant sanitizer -----------------------------------------------------------


class TestSanitizer:
    def _healthy_machine(self):
        machine = _machine(nodes=2, replication=1, plan=FaultPlan())
        touch_pages(machine, 1, range(64))
        return machine

    def test_passes_on_a_healthy_machine(self):
        machine = self._healthy_machine()
        sanitizer = InvariantSanitizer(machine)
        sanitizer.check()
        assert sanitizer.checks_run == 1

    def test_detects_directory_corruption(self):
        machine = self._healthy_machine()
        slot = next(iter(machine.cluster.slots_in_directory()))
        machine.cluster._holders.pop(slot)
        with pytest.raises(InvariantViolation, match=r"\[directory\]"):
            InvariantSanitizer(machine).check()

    def test_detects_orphaned_frame(self):
        machine = self._healthy_machine()
        machine.frames.allocate(9, 9)  # no PTE will ever claim this
        with pytest.raises(InvariantViolation, match=r"\[frames\]"):
            InvariantSanitizer(machine).check()

    def test_detects_phantom_store_copy(self):
        machine = self._healthy_machine()
        slot = next(iter(machine.cluster.slots_in_directory()))
        holder = machine.cluster.holders_of(slot)[0]
        other = machine.cluster.nodes[1 - holder].remote
        other._slots[slot] = (1, 0)  # a copy the directory never placed
        with pytest.raises(InvariantViolation, match=r"\[stores\]"):
            InvariantSanitizer(machine).check()

    def test_runner_flag_counts_sweeps(self):
        workload = build("quicksort", seed=1)
        result = runner.run(
            workload, "noprefetch", 0.5, quiet_fabric(),
            check_invariants=True,
        )
        assert result.invariant_checks > 0


# -- fault-plan crash primitives (round-trip is in test_failure_injection) -------------


class TestCrashPlans:
    def test_node_dead_follows_crash_and_rejoin(self):
        plan = FaultPlan(seed=1, node_crash=(100.0,), node_rejoin=(200.0,))
        from repro.net.faults import FaultInjector

        injector = FaultInjector(plan)
        assert not injector.node_dead(99.0)
        assert injector.node_dead(100.0)
        assert injector.node_dead(199.0)
        assert not injector.node_dead(200.0)

    def test_rejoin_must_follow_its_crash(self):
        with pytest.raises(ValueError, match="node_rejoin"):
            FaultPlan(node_crash=(100.0,), node_rejoin=(50.0,))
        with pytest.raises(ValueError, match="node_rejoin"):
            FaultPlan(node_rejoin=(50.0,))

    def test_crash_presets(self):
        plan = FaultPlan.crash(seed=7)
        assert plan.node_crash and not plan.node_rejoin
        assert not plan.is_empty
        both = FaultPlan.crash_rejoin(seed=7)
        assert both.node_rejoin[0] > both.node_crash[0]

    def test_crash_lands_on_one_node_only(self):
        cluster = _armed_cluster(nodes=3)
        assert cluster.nodes[0].injector.plan.node_crash == (CRASH_US,)
        assert cluster.nodes[1].injector.plan.node_crash == ()
        assert cluster.nodes[2].injector.plan.node_crash == ()
