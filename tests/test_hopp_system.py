"""Tests for the assembled HoPP data plane (Figure 4) and the hardware
cost model."""

import pytest

from repro.hopp.hardware_model import SramModel
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.hopp.three_tier import TierConfig


class RecordingBackend:
    def __init__(self):
        self.requests = []

    def prefetch_page(self, pid, vpn, now_us, inject_pte, tier):
        self.requests.append((pid, vpn, inject_pte, tier))
        return now_us + 4.0


def drive_stream(plane, ppn_to_vpn, npages=40, blocks=8):
    """Feed a sequential physical stream whose RPT maps ppn -> vpn."""
    for ppn in range(npages):
        plane.rpt.write(ppn, ppn_to_vpn(ppn))
    for ppn in range(npages):
        for block in range(blocks):
            plane.on_mc_access(float(ppn), (ppn << 12) | (block << 6), False)


class TestHoppDataPlane:
    def test_pipeline_end_to_end(self):
        from repro.common.types import RptEntry

        backend = RecordingBackend()
        plane = HoppDataPlane(backend, HoppConfig(stt_history_len=8))
        drive_stream(plane, lambda ppn: RptEntry(pid=1, vpn=1000 + ppn))
        # HPD extracted hot pages, RPT resolved them, STT trained, SSP
        # fired, the policy finalized, and the executor issued.
        assert plane.hpd.hot_pages > 0
        assert plane.stt.observations_out > 0
        assert backend.requests
        pid, vpn, inject, tier = backend.requests[0]
        assert pid == 1 and tier == "ssp" and inject is True
        assert vpn > 1000

    def test_unresolved_hot_pages_dropped(self):
        backend = RecordingBackend()
        plane = HoppDataPlane(backend)
        # No RPT entries: every hot page is unresolvable (kernel memory).
        for ppn in range(10):
            for block in range(8):
                plane.on_mc_access(0.0, (ppn << 12) | (block << 6), False)
        assert plane.hot_pages_unresolved > 0
        assert not backend.requests

    def test_writes_do_not_train(self):
        backend = RecordingBackend()
        plane = HoppDataPlane(backend)
        for ppn in range(10):
            for block in range(8):
                plane.on_mc_access(0.0, (ppn << 12) | (block << 6), True)
        assert plane.hpd.hot_pages == 0

    def test_swapcache_mode(self):
        from repro.common.types import RptEntry

        backend = RecordingBackend()
        plane = HoppDataPlane(backend, HoppConfig(inject_pte=False, stt_history_len=8))
        drive_stream(plane, lambda ppn: RptEntry(pid=1, vpn=1000 + ppn))
        assert backend.requests
        assert all(not inject for _, _, inject, _ in backend.requests)

    def test_tier_config_respected(self):
        from repro.common.types import RptEntry

        backend = RecordingBackend()
        plane = HoppDataPlane(
            backend,
            HoppConfig(tiers=TierConfig.only("lsp", "rsp"), stt_history_len=8),
        )
        drive_stream(plane, lambda ppn: RptEntry(pid=1, vpn=1000 + ppn))
        assert all(tier != "ssp" for _, _, _, tier in backend.requests)

    def test_page_mapped_feedback_reaches_executor(self):
        from repro.common.types import RptEntry

        backend = RecordingBackend()
        plane = HoppDataPlane(backend, HoppConfig(stt_history_len=8))
        drive_stream(plane, lambda ppn: RptEntry(pid=1, vpn=1000 + ppn))
        pid, vpn, _, _ = backend.requests[0]
        plane.on_page_mapped(pid, vpn, now_us=100.0)
        assert plane.executor.hits == 1

    def test_evicted_feedback_counts_waste(self):
        from repro.common.types import RptEntry

        backend = RecordingBackend()
        plane = HoppDataPlane(backend, HoppConfig(stt_history_len=8))
        drive_stream(plane, lambda ppn: RptEntry(pid=1, vpn=1000 + ppn))
        pid, vpn, _, _ = backend.requests[0]
        plane.on_page_evicted(pid, vpn)
        assert plane.executor.wasted == 1


class TestSramModel:
    def test_calibrated_to_paper_design_points(self):
        """Section VI-F: HPD 0.000252 mm^2 / 0.0959 mW; 64 KB RPT cache
        0.0673 mm^2 / 21.4 mW (CACTI, 22 nm)."""
        model = SramModel()
        hpd = model.hpd_table()
        assert hpd.area_mm2 == pytest.approx(0.000252, rel=1e-6)
        assert hpd.static_power_mw == pytest.approx(0.0959, rel=1e-6)
        rpt = model.rpt_cache()
        assert rpt.area_mm2 == pytest.approx(0.0673, rel=1e-6)
        assert rpt.static_power_mw == pytest.approx(21.4, rel=1e-6)

    def test_monotone_in_bits(self):
        model = SramModel()
        small = model.rpt_cache(size_kb=16)
        large = model.rpt_cache(size_kb=64)
        assert small.area_mm2 < large.area_mm2
        assert small.static_power_mw < large.static_power_mw

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            SramModel().estimate(-1)
