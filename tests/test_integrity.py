"""Data-integrity suite: silent-corruption injection, checksum verify,
CXL poison semantics, and the patrol scrubber.

Proves the properties the integrity layer must hold:

* **byte-identity off** — without corruption fields or a scrubber,
  RunResults carry no ``integrity`` key and the ledger is pure
  bookkeeping (tests/test_goldens.py pins the actual bytes; here we pin
  the *absence* of the new key);
* **determinism** — corruption is a pure function of (plan, seed): two
  identical runs produce identical integrity sections down to the
  detection-latency stats;
* **closed ledger** — every detection ends in exactly one outcome
  (repaired, unresolved, or a poisoned copy), asserted by the
  cross-layer sanitizer after every sweep;
* **acceptance** — replication 2 plus the scrubber detects and repairs
  every stored corruption (zero poisoned pages); replication 1 poisons
  deterministically and every poisoned read zero-fills;
* **poison semantics** — poisoned slots are barred from promotion,
  skipped by prefetch, force-demoted out of the pool, and salvaged from
  the swapcache exactly like lost slots.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterConfig, HealthConfig, HealthMonitor
from repro.cluster.cluster import RemoteMemoryCluster
from repro.integrity import (
    IntegrityController,
    PageCorruptError,
    PatrolScrubber,
    ScrubConfig,
    SlotChecksums,
)
from repro.kernel.page_table import PteState
from repro.kernel.swap import SwapSpace
from repro.memtier import TIER_POOL, MemtierConfig
from repro.net.faults import FaultInjector, FaultPlan
from repro.sim import runner
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.sim.sanitizer import InvariantSanitizer
from repro.workloads import build
from tests.conftest import quiet_fabric, touch_pages


def _corrupt_cluster(nodes=3, replication=2, plan=None, capacity=1024):
    """A cluster with corruption injectors armed and health attached."""
    plan = plan or FaultPlan(seed=1, bit_flip_write=0.0, media_error_rate=0.0)
    cluster = RemoteMemoryCluster(
        ClusterConfig(nodes=nodes, replication=replication),
        capacity,
        quiet_fabric(),
        fault_plan=plan,
    )
    cluster.health = HealthMonitor(cluster, HealthConfig())
    return cluster


def _stored(cluster, slot, pid, vpn):
    """Writeback ``slot`` through the directory (all replicas)."""
    for node in cluster.assign(slot, pid, vpn):
        node.remote.write(slot, pid, vpn)


def _machine(plan=None, nodes=2, replication=1, local_pages=16,
             check_invariants=False, scrub=None, memtier=None):
    machine = Machine(
        MachineConfig(
            local_memory_pages=local_pages,
            fabric=quiet_fabric(),
            watermark_slack=4,
            fault_plan=plan,
            cluster=ClusterConfig(nodes=nodes, replication=replication),
            check_invariants=check_invariants,
            memtier=memtier,
            scrub=scrub,
        )
    )
    machine.register_process(1)
    machine.add_vma(1, 0, 4096, "test")
    return machine


def _acceptance_result(replication, scrub_rate=5000.0, seed=1,
                       plan=None, nodes=3):
    """The ISSUE's acceptance scenario: quicksort on hopp under the
    corruption preset, sanitizer on."""
    workload = build("quicksort", seed=1)
    return runner.run(
        workload,
        "hopp",
        0.5,
        quiet_fabric(),
        plan or FaultPlan.corruption(seed),
        ClusterConfig(nodes=nodes, replication=replication),
        check_invariants=True,
        scrub=(
            ScrubConfig(rate_pages_per_s=scrub_rate)
            if scrub_rate else None
        ),
    )


# -- plan serialization and validation -------------------------------------------------


class TestCorruptionPlanSerialization:
    def test_corruption_presets_arm_the_plan(self):
        for plan in (FaultPlan.corruption(7), FaultPlan.corruption_chaos(7)):
            assert plan.has_corruption
            assert not plan.is_empty
        # The chaos overlay keeps its loud faults too.
        assert FaultPlan.corruption_chaos(7).timeout_probability > 0
        assert FaultPlan.corruption(7).timeout_probability == 0

    def test_corruption_only_plan_is_not_empty(self):
        # has_corruption must arm the injectors even with no loud
        # faults, or silent corruption would never be injected.
        assert not FaultPlan(bit_flip_read=0.5).is_empty
        assert not FaultPlan(media_error_rate=0.5).is_empty
        assert FaultPlan().is_empty

    def test_round_trip_covers_corruption_fields(self, tmp_path):
        plan = FaultPlan(
            seed=5,
            bit_flip_read=0.25,
            bit_flip_write=0.125,
            media_error_rate=0.5,
            media_error_latency_us=123.0,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_json_file(str(path)) == plan

    @pytest.mark.parametrize(
        "field,value",
        [
            ("bit_flip_read", "often"),
            ("bit_flip_write", [0.1]),
            ("media_error_rate", "sometimes"),
            ("media_error_latency_us", "soon"),
        ],
    )
    def test_malformed_field_is_named_in_the_error(self, field, value):
        with pytest.raises(ValueError, match=field):
            FaultPlan.from_dict({field: value})

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bit_flip_read=1.5),
            dict(bit_flip_write=-0.1),
            dict(media_error_rate=2.0),
            dict(media_error_latency_us=0.0),
            dict(media_error_latency_us=-5.0),
        ],
    )
    def test_out_of_range_rates_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_scrub_config_validates(self):
        assert ScrubConfig().rate_pages_per_s == 5000.0
        with pytest.raises(ValueError):
            ScrubConfig(rate_pages_per_s=0.0)
        with pytest.raises(ValueError):
            ScrubConfig(rate_pages_per_s=-1.0)


# -- the checksum ledger ---------------------------------------------------------------


class TestSlotChecksums:
    def test_no_injector_is_always_clean(self):
        ledger = SlotChecksums()
        ledger.record_write(3, 10.0, 0)
        assert ledger.is_clean(3, 1e12)
        assert ledger.corrupt_since(3) is None
        assert ledger.tracked_slots() == ()

    def test_write_flip_is_bad_immediately(self):
        injector = FaultInjector(FaultPlan(seed=1, bit_flip_write=1.0))
        ledger = SlotChecksums(injector)
        ledger.record_write(5, 40.0, 0)
        assert not ledger.is_clean(5, 40.0)
        assert ledger.corrupt_since(5) == 40.0
        assert injector.bit_flips_injected == 1

    def test_media_strike_latches_at_its_time(self):
        injector = FaultInjector(
            FaultPlan(seed=1, media_error_rate=1.0,
                      media_error_latency_us=100.0)
        )
        ledger = SlotChecksums(injector)
        ledger.record_write(7, 10.0, 0)
        strike = injector.media_strike_us(7, 0, 10.0)  # same pure draw
        assert strike is not None and 10.0 < strike <= 110.0
        assert ledger.is_clean(7, strike - 1e-9)
        assert not ledger.is_clean(7, strike)
        assert ledger.corrupt_since(7) == strike

    def test_media_strike_is_a_pure_function_of_seed_slot_write(self):
        def draws():
            injector = FaultInjector(
                FaultPlan(seed=9, media_error_rate=0.5)
            )
            return [injector.media_strike_us(slot, w, 0.0)
                    for slot in range(8) for w in range(4)]

        assert draws() == draws()

    def test_overwrite_clears_previous_state(self):
        injector = FaultInjector(FaultPlan(seed=1, bit_flip_write=1.0))
        ledger = SlotChecksums(injector)
        ledger.record_write(5, 40.0, 0)
        assert not ledger.is_clean(5, 50.0)
        ledger.injector = None  # next write draws no coins
        ledger.record_write(5, 60.0, 1)
        assert ledger.is_clean(5, 1e12)

    def test_drop_and_clear_forget_everything(self):
        injector = FaultInjector(FaultPlan(seed=1, bit_flip_write=1.0))
        ledger = SlotChecksums(injector)
        ledger.record_write(1, 0.0, 0)
        ledger.record_write(2, 0.0, 1)
        ledger.drop(1)
        assert ledger.is_clean(1, 1.0)
        assert not ledger.is_clean(2, 1.0)
        ledger.clear()
        assert ledger.tracked_slots() == ()

    def test_wire_flips_never_touch_the_ledger(self):
        injector = FaultInjector(FaultPlan(seed=1, bit_flip_read=1.0))
        ledger = SlotChecksums(injector)
        ledger.record_write(4, 0.0, 0)
        assert injector.corrupt_read(5.0)  # transient
        assert ledger.is_clean(4, 10.0)


# -- the controller --------------------------------------------------------------------


class TestIntegrityController:
    def _controller(self, cluster, swap=None):
        return IntegrityController(cluster, swap or SwapSpace())

    def test_ledger_arithmetic_is_closed(self):
        cluster = _corrupt_cluster()
        controller = self._controller(cluster)
        assert controller.balanced
        controller.note_detected(1.0, 0, 0)
        assert not controller.balanced
        controller.note_repaired(1, 1.0, 0, 0)
        assert controller.balanced
        controller.note_detected(2.0, 1, 0)
        controller.note_unresolved(1)
        assert controller.balanced

    def test_repair_rewrites_from_the_clean_replica(self):
        cluster = _corrupt_cluster(nodes=3, replication=2)
        swap = SwapSpace()
        slot = swap.allocate(1, 100)
        _stored(cluster, slot, 1, 100)
        bad_id, clean_id = cluster.holders_of(slot)
        bad = cluster.nodes[bad_id]
        bad.remote.checksums._bad[slot] = 10.0  # corrupt one copy
        controller = self._controller(cluster, swap)
        controller.note_detected(50.0, slot, bad_id, since=10.0)
        outcome = controller.resolve_stored_corruption(slot, bad_id, 50.0)
        assert outcome == "repaired"
        assert controller.corruption_repaired == 1
        assert controller.repair_reads == 1 and controller.repair_writes == 1
        assert bad.remote.checksums.is_clean(slot, 60.0)
        assert controller.balanced
        assert not cluster.is_poisoned(slot)

    def test_no_clean_copy_poisons_the_slot(self):
        cluster = _corrupt_cluster(nodes=3, replication=2)
        swap = SwapSpace()
        slot = swap.allocate(1, 100)
        _stored(cluster, slot, 1, 100)
        for node_id in cluster.holders_of(slot):
            cluster.nodes[node_id].remote.checksums._bad[slot] = 10.0
        first = cluster.holders_of(slot)[0]
        controller = self._controller(cluster, swap)
        controller.note_detected(50.0, slot, first, since=10.0)
        outcome = controller.resolve_stored_corruption(slot, first, 50.0)
        assert outcome == "poisoned"
        assert cluster.is_poisoned(slot)
        assert controller.pages_poisoned == 1
        # Both condemned copies were detections, and the ledger closes.
        assert controller.corruption_detected == 2
        assert controller.poisoned_copies == 2
        assert controller.balanced
        # Poisoned slots keep their holders: the data exists, known-bad.
        assert cluster.holders_of(slot)

    def test_release_discards_the_poison_mark(self):
        cluster = _corrupt_cluster(nodes=2, replication=1)
        swap = SwapSpace()
        slot = swap.allocate(1, 100)
        _stored(cluster, slot, 1, 100)
        cluster.mark_poisoned(slot)
        assert cluster.is_poisoned(slot)
        cluster.release(slot)
        assert not cluster.is_poisoned(slot)

    def test_detection_latency_tracks_latent_corruption_age(self):
        cluster = _corrupt_cluster()
        controller = self._controller(cluster)
        controller.note_detected(150.0, 0, 0, since=100.0)
        controller.note_detected(400.0, 1, 0, since=100.0)
        controller.note_detected(500.0, 2, 0)  # wire flip: no age
        stats = controller.section()["detect_latency_us"]
        assert stats["count"] == 2
        assert stats["mean"] == pytest.approx(175.0)
        assert stats["max"] == pytest.approx(300.0)


# -- the patrol scrubber ---------------------------------------------------------------


class TestPatrolScrubber:
    def test_rate_sets_the_audit_interval(self):
        cluster = _corrupt_cluster()
        controller = IntegrityController(cluster, SwapSpace())
        scrubber = PatrolScrubber(
            cluster, controller, ScrubConfig(rate_pages_per_s=2000.0)
        )
        assert scrubber.interval_us == pytest.approx(500.0)
        assert scrubber.due(0.0)
        scrubber.step(100.0)
        assert not scrubber.due(100.0 + 499.0)
        assert scrubber.due(100.0 + 500.0)

    def test_walk_covers_every_copy_round_robin(self):
        cluster = _corrupt_cluster(nodes=2, replication=2)
        swap = SwapSpace()
        for vpn in (100, 101, 102):
            slot = swap.allocate(1, vpn)
            _stored(cluster, slot, 1, vpn)
        controller = IntegrityController(cluster, swap)
        scrubber = PatrolScrubber(cluster, controller, ScrubConfig())
        for step in range(6):  # 3 slots x 2 copies
            scrubber.step(step * 1000.0)
        assert controller.scrub_reads == 6
        # Every (slot, holder) pair was audited exactly once per lap.
        reads = [node.remote.pages_read for node in cluster.nodes]
        assert reads == [3, 3]

    def test_scrubber_skips_poisoned_and_lost_slots(self):
        cluster = _corrupt_cluster(nodes=2, replication=1)
        swap = SwapSpace()
        slots = []
        for vpn in (100, 101):
            slot = swap.allocate(1, vpn)
            _stored(cluster, slot, 1, vpn)
            slots.append(slot)
        cluster.mark_poisoned(slots[0])
        controller = IntegrityController(cluster, swap)
        scrubber = PatrolScrubber(cluster, controller, ScrubConfig())
        scrubber.step(0.0)
        scrubber.step(1000.0)
        assert controller.scrub_reads == 2
        poisoned_holder = cluster.holders_of(slots[0])[0]
        assert cluster.nodes[poisoned_holder].remote.pages_read == 0

    def test_scrub_finds_latent_corruption_and_repairs_it(self):
        cluster = _corrupt_cluster(nodes=3, replication=2)
        swap = SwapSpace()
        slot = swap.allocate(1, 100)
        _stored(cluster, slot, 1, 100)
        bad_id = cluster.holders_of(slot)[0]
        cluster.nodes[bad_id].remote.checksums._strike_us[slot] = 500.0
        controller = IntegrityController(cluster, swap)
        scrubber = PatrolScrubber(cluster, controller, ScrubConfig())
        # Before the strike: audits see a clean copy.
        scrubber.step(0.0)
        scrubber.step(200.0)
        assert controller.scrub_detected == 0
        # After the strike: the patrol latches and repairs it.
        for step in range(3):
            scrubber.step(1000.0 + step * 1000.0)
        assert controller.scrub_detected == 1
        assert controller.corruption_repaired == 1
        assert cluster.nodes[bad_id].remote.checksums.is_clean(slot, 1e6)
        assert controller.balanced

    def test_scrubber_rides_the_repair_pump_idle_slot(self):
        # A fast audit rate so even this short run sees patrol reads.
        machine = _machine(scrub=ScrubConfig(rate_pages_per_s=100_000.0))
        assert machine.scrubber is not None
        assert machine.repair.scrubber is machine.scrubber
        touch_pages(machine, 1, range(64))
        assert machine.integrity.scrub_reads > 0
        # Scrub-only arming injects nothing and detects nothing.
        assert machine.integrity.corruption_detected == 0
        section = machine.integrity.section()
        assert section["bit_flips_injected"] == 0
        assert section["media_errors_injected"] == 0


# -- poison semantics on the demand/prefetch/memtier paths -----------------------------


class TestPoisonSemantics:
    def _poison_one_remote(self, machine):
        """Mark one REMOTE page's slot poisoned; returns (vpn, slot)."""
        table = machine.page_table(1)
        vpn = next(
            v for v in range(64)
            if table.peek(v) is not None
            and table.peek(v).state == PteState.REMOTE
        )
        slot = table.peek(vpn).swap_slot
        machine.integrity.poison(slot, machine.now_us, condemned=0)
        return vpn, slot

    def test_poisoned_demand_read_zero_fills(self):
        machine = _machine(scrub=ScrubConfig())
        touch_pages(machine, 1, range(64))
        vpn, slot = self._poison_one_remote(machine)
        machine.access(1, vpn << 12)
        assert machine.integrity.poisoned_reads == 1
        assert machine.pages_zero_filled == 1
        table = machine.page_table(1)
        assert table.peek(vpn).state == PteState.PRESENT
        # The fault released the slot, which discards the poison mark.
        assert not machine.cluster.is_poisoned(slot)
        assert machine.cluster.conserved()
        InvariantSanitizer(machine).check()

    def test_prefetch_skips_poisoned_slots(self):
        machine = _machine(scrub=ScrubConfig())
        touch_pages(machine, 1, range(64))
        vpn, _slot = self._poison_one_remote(machine)
        assert machine.prefetch_page(1, vpn, machine.now_us, True, "t0") is None

    def test_swapcache_salvage_rewrites_a_poisoned_slot(self):
        # A swapcache page whose remote copy is poisoned is the last
        # good copy: eviction must write it back fresh, not clean-drop.
        machine = _machine(scrub=ScrubConfig(), local_pages=16)
        touch_pages(machine, 1, range(48))
        table = machine.page_table(1)
        victim = next(
            (v for v in range(48)
             if table.peek(v) is not None
             and table.peek(v).state == PteState.SWAPCACHE), None)
        if victim is None:  # drive a page into the swapcache via prefetch
            victim = next(
                v for v in range(48)
                if table.peek(v) is not None
                and table.peek(v).state == PteState.REMOTE
            )
            machine.prefetch_page(1, victim, machine.now_us, False, "t0")
            machine.now_us += 10_000.0
            machine._process_arrivals(machine.now_us)
        pte = table.peek(victim)
        assert pte.state == PteState.SWAPCACHE
        old_slot = pte.swap_slot
        machine.integrity.poison(old_slot, machine.now_us, condemned=0)
        salvaged_before = machine.pages_salvaged
        machine._evict(1, victim)
        assert machine.pages_salvaged == salvaged_before + 1
        assert pte.swap_slot != old_slot
        assert not machine.cluster.is_poisoned(pte.swap_slot)
        assert machine.cluster.conserved()

    def test_promotion_barred_and_force_demote(self):
        memtier = MemtierConfig(pool_nodes=1, pool_capacity_pages=128)
        machine = _machine(
            scrub=ScrubConfig(), nodes=1, memtier=memtier, local_pages=24
        )
        touch_pages(machine, 1, range(64))
        engine = machine.memtier
        assert engine.integrity is machine.integrity
        # Pick a pool-resident slot and poison it: a demote is queued.
        slot = next(iter(engine._pool_seq))
        pool_id = engine._pool_seq[slot][0]
        assert machine.cluster.nodes[pool_id].tier == TIER_POOL
        machine.integrity.poison(slot, machine.now_us, condemned=0)
        assert ("demote", slot, pool_id) in engine._queue
        machine.flush_memtier()
        holders = machine.cluster.holders_of(slot)
        assert holders and machine.cluster.nodes[holders[0]].tier != TIER_POOL
        assert machine.cluster.is_poisoned(slot)  # the mark survives moves
        # And a queued promotion of a poisoned slot is refused.
        engine._enqueue(("promote", slot, -1))
        barred = machine.integrity.promotions_barred
        machine.flush_memtier()
        assert machine.integrity.promotions_barred == barred + 1
        assert machine.cluster.conserved()
        InvariantSanitizer(machine).check()


# -- PR3 x PR7 interaction: lost slots under the tier pool -----------------------------


class TestLostSlotMemtierInteraction:
    def _crash_tiered_machine(self):
        plan = FaultPlan(seed=1, node_crash=(1e9,))
        memtier = MemtierConfig(pool_nodes=1, pool_capacity_pages=64)
        machine = _machine(
            plan=plan, nodes=2, replication=1, local_pages=16,
            memtier=memtier,
        )
        touch_pages(machine, 1, range(64))
        return machine

    def test_lost_slot_zero_fills_even_with_pool_armed(self):
        machine = self._crash_tiered_machine()
        table = machine.page_table(1)
        # Node 0 is the pool node and the crash victim: find a page
        # whose only copy lives there.
        victim = next(
            vpn for vpn in range(64)
            if table.peek(vpn) is not None
            and table.peek(vpn).state == PteState.REMOTE
            and machine.cluster.holders_of(table.peek(vpn).swap_slot) == (0,)
        )
        machine.now_us = 1e9 + 600.0
        machine.access(1, victim << 12)
        assert machine.pages_zero_filled == 1
        assert machine.repair.pages_lost > 0
        assert table.peek(victim).state == PteState.PRESENT
        assert machine.cluster.conserved()
        InvariantSanitizer(machine).check()

    def test_swapcache_salvage_when_lost_copy_was_pool_resident(self):
        machine = self._crash_tiered_machine()
        table = machine.page_table(1)
        victim = next(
            vpn for vpn in range(64)
            if table.peek(vpn) is not None
            and table.peek(vpn).state == PteState.REMOTE
            and machine.cluster.holders_of(table.peek(vpn).swap_slot) == (0,)
        )
        # Pull the page into the swapcache, then kill the pool node.
        machine.prefetch_page(1, victim, machine.now_us, False, "t0")
        machine.now_us += 10_000.0
        machine._process_arrivals(machine.now_us)
        pte = table.peek(victim)
        assert pte.state == PteState.SWAPCACHE
        machine.now_us = 1e9 + 600.0
        machine.flush_recovery()
        assert machine.cluster.is_lost(pte.swap_slot)
        machine._evict(1, victim)
        assert machine.pages_salvaged == 1
        assert pte.state == PteState.REMOTE
        holders = machine.cluster.holders_of(pte.swap_slot)
        assert holders and 0 not in holders
        assert machine.cluster.conserved()

    def test_mid_migration_loss_abandons_the_task_cleanly(self):
        machine = self._crash_tiered_machine()
        engine = machine.memtier
        # Queue a demotion for a pool-resident slot, then lose its node
        # before the pump runs: the task must bail without a transfer.
        slot = next(iter(engine._pool_seq))
        pool_id = engine._pool_seq[slot][0]
        assert pool_id == 0  # the pool node is the crash victim
        engine._enqueue(("demote", slot, pool_id))
        machine.now_us = 1e9 + 600.0
        machine.flush_recovery()
        assert machine.cluster.holders_of(slot) == ()
        reads_before = engine.migration_reads
        machine.flush_memtier()
        assert engine.migration_reads == reads_before
        assert slot not in engine._pool_seq
        assert machine.cluster.conserved()
        InvariantSanitizer(machine).check()


# -- acceptance ------------------------------------------------------------------------


class TestCorruptionAcceptance:
    def test_replicated_scrubbed_cluster_repairs_everything(self):
        result = _acceptance_result(replication=2)
        section = result.integrity
        assert section["corruption_detected"] > 0
        assert section["corruption_repaired"] > 0
        assert section["pages_poisoned"] == 0
        assert section["poisoned_reads"] == 0
        assert section["scrub_detected"] > 0
        assert section["corruption_detected"] == (
            section["corruption_repaired"]
            + section["corruption_unresolved"]
            + section["poisoned_copies"]
        )
        assert result.invariant_checks > 0

    def test_unreplicated_cluster_poisons_deterministically(self):
        result = _acceptance_result(replication=1, nodes=2)
        section = result.integrity
        assert section["pages_poisoned"] > 0
        assert section["poisoned_reads"] > 0
        # Every poisoned demand read zero-filled.
        assert result.pages_zero_filled >= section["poisoned_reads"]
        assert result.invariant_checks > 0

    def test_corruption_outcome_is_deterministic(self):
        first = _acceptance_result(replication=1, nodes=2)
        second = _acceptance_result(replication=1, nodes=2)
        assert first.to_dict(full=True) == second.to_dict(full=True)

    def test_corruption_off_has_no_integrity_key(self):
        workload = build("stream-simple", npages=120, passes=2)
        result = runner.run(workload, "hopp", 0.5, quiet_fabric())
        payload = result.to_dict(full=True)
        assert "integrity" not in payload
        assert result.integrity is None

    def test_loud_fault_plans_do_not_arm_integrity(self):
        # Chaos (no corruption fields) must not grow the integrity
        # section: pre-existing chaos results stay byte-identical.
        workload = build("stream-simple", npages=120, passes=2)
        result = runner.run(
            workload, "hopp", 0.5, quiet_fabric(), FaultPlan.chaos(1)
        )
        assert "integrity" not in result.to_dict(full=True)

    def test_integrity_section_round_trips(self):
        result = _acceptance_result(replication=2)
        clone = RunResult.from_dict(result.to_dict(full=True))
        assert clone.integrity == result.integrity
        assert clone.to_dict(full=True) == result.to_dict(full=True)

    def test_scrub_rate_trades_reads_for_latency(self):
        slow = _acceptance_result(replication=2, scrub_rate=500.0)
        fast = _acceptance_result(replication=2, scrub_rate=20000.0)
        assert fast.integrity["scrub_reads"] > slow.integrity["scrub_reads"]

    def test_corruption_chaos_under_sanitizer_stays_conserved(self):
        result = _acceptance_result(
            replication=2, plan=FaultPlan.corruption_chaos(1)
        )
        section = result.integrity
        assert section["corruption_detected"] == (
            section["corruption_repaired"]
            + section["corruption_unresolved"]
            + section["poisoned_copies"]
        )
        assert result.invariant_checks > 0
