"""Tests for the content-addressed result cache and its key discipline.

The cache's one job is to never serve a result for inputs that differ
from the ones that produced it.  These tests attack that from every
side: every RunSpec field must perturb the key, the code-schema version
must perturb the key, the runner's signature must stay covered by the
spec, and uncacheable specs must be refused rather than mis-keyed.
"""

from __future__ import annotations

import inspect
import json

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.exec import cache as cache_mod
from repro.exec.cache import ResultCache, TraceCache, cache_key, cacheability
from repro.exec.pool import execute, run_spec
from repro.exec.spec import RUNNER_KWARGS_COVERED, RunSpec
from repro.integrity import ScrubConfig
from repro.memtier import MemtierConfig
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.sim import systems as systems_mod
from repro.sim.systems import SystemSpec
from repro.telemetry import TelemetryConfig
from repro.workloads import registry as workload_registry
from repro.workloads.base import Workload
from tests.conftest import quiet_fabric


def small_spec(**overrides) -> RunSpec:
    base = dict(
        workload="stream-simple",
        system="fastswap",
        fraction=0.5,
        seed=3,
        workload_kwargs={"npages": 64, "passes": 1},
        fabric=quiet_fabric(3),
    )
    base.update(overrides)
    return RunSpec(**base)


class TestCacheKey:
    def test_identical_specs_share_a_key(self):
        assert cache_key(small_spec()) == cache_key(small_spec())

    @pytest.mark.parametrize(
        "override",
        [
            dict(workload="stream-ladder"),
            dict(system="hopp"),
            dict(fraction=0.25),
            dict(seed=4),
            dict(workload_kwargs={"npages": 65, "passes": 1}),
            dict(fabric=FabricConfig(seed=9)),
            dict(fault_plan=FaultPlan()),
            dict(fault_plan=FaultPlan.chaos(3)),
            dict(cluster=ClusterConfig(nodes=3)),
            dict(check_invariants=True),
            dict(telemetry=TelemetryConfig()),
            dict(telemetry=TelemetryConfig(epoch_us=500.0)),
            dict(memtier=MemtierConfig()),
            dict(memtier=MemtierConfig(pool_nodes=2)),
            dict(memtier=MemtierConfig(pool_capacity_pages=128)),
            dict(memtier=MemtierConfig(cxl_latency_us=1.6)),
            dict(memtier=MemtierConfig(promote_touches=3)),
            dict(memtier=MemtierConfig(pool_high_watermark=0.8)),
            dict(scrub=ScrubConfig()),
            dict(scrub=ScrubConfig(rate_pages_per_s=1000.0)),
            dict(fault_plan=FaultPlan(bit_flip_read=0.01)),
            dict(fault_plan=FaultPlan(media_error_rate=0.05)),
            dict(system_kwargs={"hpd_threshold": 16}),
            dict(system_kwargs={"policy.alpha": 0.4}),
        ],
    )
    def test_every_field_perturbs_the_key(self, override):
        assert cache_key(small_spec(**override)) != cache_key(small_spec())

    def test_none_fabric_equals_default_fabric(self):
        # runner.run(fabric=None) constructs FabricConfig(); the two run
        # identically, so they must hash identically.
        assert cache_key(small_spec(fabric=None)) == cache_key(
            small_spec(fabric=FabricConfig())
        )

    def test_none_cluster_equals_default_cluster(self):
        assert cache_key(small_spec(cluster=None)) == cache_key(
            small_spec(cluster=ClusterConfig())
        )

    def test_empty_fault_plan_differs_from_none(self):
        # FaultPlan() arms the recovery machinery even with nothing in
        # it; None leaves it unbuilt.  They are different runs.
        assert cache_key(small_spec(fault_plan=FaultPlan())) != cache_key(
            small_spec(fault_plan=None)
        )

    def test_default_telemetry_differs_from_none(self):
        # Probes never change simulator counters, but an instrumented
        # RunResult carries the telemetry blob — a different artifact.
        assert cache_key(small_spec(telemetry=TelemetryConfig())) != cache_key(
            small_spec(telemetry=None)
        )

    def test_schema_version_perturbs_the_key(self, monkeypatch):
        before = cache_key(small_spec())
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1)
        assert cache_key(small_spec()) != before

    def test_workload_kwargs_order_does_not_matter(self):
        a = small_spec(workload_kwargs={"npages": 64, "passes": 1})
        b = small_spec(workload_kwargs={"passes": 1, "npages": 64})
        assert cache_key(a) == cache_key(b)


class TestRunnerSignatureAudit:
    def test_runner_kwargs_all_covered(self):
        """Any parameter added to runner.run must be added to RunSpec
        (and its key) too, or the cache would silently ignore it."""
        params = set(inspect.signature(runner.run).parameters)
        assert params == RUNNER_KWARGS_COVERED

    def test_spec_fields_map_onto_key_dict(self):
        key = small_spec().key_dict()
        assert set(key) == {
            "workload", "workload_kwargs", "seed", "system",
            "system_kwargs", "fraction", "fabric", "fault_plan", "cluster",
            "check_invariants", "telemetry", "memtier", "scrub",
        }
        # The projection must be JSON-stable (the hash input).
        json.dumps(key, sort_keys=True)


class _ForeignWorkload(Workload):
    pass


def _foreign_builder(config):  # pragma: no cover - never actually built
    raise AssertionError("should not run")


class TestCacheabilityRefusal:
    def test_repro_spec_is_cacheable(self):
        ok, why = cacheability(small_spec())
        assert ok and why == ""

    def test_unknown_workload_refused(self):
        ok, why = cacheability(small_spec(workload="no-such-workload"))
        assert not ok and "unknown workload" in why

    def test_unknown_system_refused(self):
        ok, why = cacheability(small_spec(system="no-such-system"))
        assert not ok and "unknown system" in why

    def test_user_registered_workload_refused(self, monkeypatch):
        _ForeignWorkload.__module__ = "userland.workloads"
        monkeypatch.setitem(
            workload_registry._REGISTRY, "foreign-wl", _ForeignWorkload
        )
        ok, why = cacheability(small_spec(workload="foreign-wl"))
        assert not ok and "user-registered" in why

    def test_user_registered_system_refused(self, monkeypatch):
        _foreign_builder.__module__ = "userland.systems"
        spec = SystemSpec(name="foreign-sys", builder=_foreign_builder)
        monkeypatch.setitem(systems_mod._REGISTRY, "foreign-sys", spec)
        ok, why = cacheability(small_spec(system="foreign-sys"))
        assert not ok and "user-registered" in why

    def test_refused_specs_never_touch_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(workload="no-such-workload")
        assert cache.get(spec) is None
        assert cache.stats()["refused"] == 1
        assert list(tmp_path.rglob("*.json")) == []


class TestResultCacheRoundTrip:
    def test_miss_then_hit_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        assert cache.get(spec) is None
        fresh = run_spec(spec)
        cache.put(spec, fresh)
        cached = cache.get(spec)
        assert cached is not None
        assert cached.to_dict(full=True) == fresh.to_dict(full=True)
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "refused": 0}

    def test_execute_cached_equals_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(system="hopp")
        cold = execute([spec], cache=cache)[0]
        warm = execute([spec], cache=cache)[0]
        uncached = execute([spec])[0]
        assert warm.to_dict(full=True) == cold.to_dict(full=True)
        assert warm.to_dict(full=True) == uncached.to_dict(full=True)
        assert cache.hits == 1 and cache.stores == 1

    def test_schema_bump_invalidates_stored_entry(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        cache.put(spec, run_spec(spec))
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1)
        assert cache.get(spec) is None

    def test_tampered_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        path = cache.put(spec, run_spec(spec))
        payload = json.loads(path.read_text())
        payload["key"]["seed"] = 999  # key no longer matches the spec
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None


class TestTraceCache:
    def test_materialized_trace_matches_generator(self):
        traces = TraceCache()
        from repro.workloads import build

        workload = build("stream-simple", seed=3, npages=64, passes=1)
        assert traces.get("stream-simple", 3, {"npages": 64, "passes": 1}) == list(
            workload.trace()
        )
        assert traces.misses == 1
        traces.get("stream-simple", 3, {"npages": 64, "passes": 1})
        assert traces.hits == 1

    def test_capacity_bound_evicts_oldest(self):
        traces = TraceCache(capacity=1)
        traces.get("stream-simple", 3, {"npages": 16, "passes": 1})
        traces.get("stream-simple", 4, {"npages": 16, "passes": 1})
        traces.get("stream-simple", 3, {"npages": 16, "passes": 1})
        assert traces.misses == 3 and traces.hits == 0
