"""Tests for the workload suite: registry, determinism, VMA coverage,
and the pattern properties each generator promises."""

import itertools

import pytest

from repro.analysis.patterns import analyze_trace, page_sequence
from repro.common.constants import PAGE_SHIFT
from repro.workloads import ALL_APPS, NON_JVM_APPS, SPARK_APPS, build, names
from repro.workloads import registry, traclib
import random


class TestRegistry:
    def test_all_apps_buildable(self):
        for name in ALL_APPS:
            wl = build(name, seed=3)
            assert wl.name == name
            assert wl.footprint_pages > 0

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build("nonexistent")

    def test_groups_are_disjoint_and_flagged(self):
        assert not set(NON_JVM_APPS) & set(SPARK_APPS)
        for name in NON_JVM_APPS:
            assert not build(name).jvm
        for name in SPARK_APPS:
            assert build(name).jvm

    def test_names_sorted(self):
        listed = names()
        assert listed == sorted(listed)

    def test_register_extension(self):
        from repro.workloads.microbench import SimpleStream

        class Custom(SimpleStream):
            name = "custom-test-wl"

        registry.register(Custom)
        assert build("custom-test-wl").name == "custom-test-wl"
        del registry._REGISTRY["custom-test-wl"]


class TestTraceProperties:
    @pytest.mark.parametrize("name", ALL_APPS)
    def test_trace_deterministic(self, name):
        wl_a = build(name, seed=11)
        wl_b = build(name, seed=11)
        head_a = list(itertools.islice(wl_a.trace(), 2000))
        head_b = list(itertools.islice(wl_b.trace(), 2000))
        assert head_a == head_b

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_different_seeds_differ(self, name):
        head_a = list(itertools.islice(build(name, seed=1).trace(), 5000))
        head_b = list(itertools.islice(build(name, seed=2).trace(), 5000))
        # Some generators are seed-insensitive in their first accesses;
        # compare a longer horizon and allow strictly-deterministic
        # kernels (FT has no randomness at all).
        deterministic = {"npb-ft", "hpl", "npb-mg"}  # structured kernels
        if name not in deterministic:
            assert head_a != head_b

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_accesses_within_declared_vmas(self, name):
        wl = build(name, seed=5)
        regions = {}
        for process in wl.processes:
            regions[process.pid] = [
                (start, start + npages) for start, npages, _ in process.vmas
            ]
        for pid, vaddr in itertools.islice(wl.trace(), 30000):
            vpn = vaddr >> PAGE_SHIFT
            assert any(lo <= vpn < hi for lo, hi in regions[pid]), (
                f"{name}: vpn {vpn} outside declared VMAs"
            )

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_footprint_upper_bounds_distinct_pages(self, name):
        wl = build(name, seed=5)
        pages = {vaddr >> PAGE_SHIFT for _, vaddr in wl.trace()}
        assert len(pages) <= wl.footprint_pages


class TestPatternPromises:
    def test_simple_stream_is_simple(self):
        wl = build("stream-simple", npages=300, passes=1)
        breakdown = analyze_trace(page_sequence(wl.trace()))
        assert breakdown.fraction("simple") > 0.9

    def test_ladder_stream_is_ladder(self):
        wl = build("stream-ladder", steps=200, passes=1)
        breakdown = analyze_trace(page_sequence(wl.trace()))
        assert breakdown.fraction("ladder") > 0.5
        assert breakdown.fraction("simple") < 0.3

    def test_ripple_stream_is_mostly_ripple(self):
        wl = build("stream-ripple", npages=400, passes=1)
        breakdown = analyze_trace(page_sequence(wl.trace()))
        # Ripple is the plurality; swap patterns also register as short
        # ladders (LSP outranks RSP in the cascade, same as here), and
        # almost nothing is unclassifiable.
        assert breakdown.fraction("ripple") > 0.4
        assert breakdown.fraction("irregular") < 0.15

    def test_hpl_contains_ladders(self):
        wl = build("hpl")
        breakdown = analyze_trace(page_sequence(wl.trace()))
        assert breakdown.fraction("ladder") > 0.1

    def test_kmeans_mostly_simple(self):
        wl = build("omp-kmeans")
        breakdown = analyze_trace(page_sequence(wl.trace()))
        assert breakdown.fraction("simple") > 0.5


class TestTraclib:
    def test_visit_page_spreads_blocks(self):
        accesses = list(traclib.visit_page(1, 5, blocks_per_page=8))
        assert len(accesses) == 8
        blocks = {(vaddr >> 6) & 63 for _, vaddr in accesses}
        assert len(blocks) == 8
        assert all(vaddr >> 12 == 5 for _, vaddr in accesses)

    def test_scan_stride(self):
        pages = page_sequence(traclib.scan(1, 100, 5, stride=3, blocks_per_page=2))
        assert pages == [100, 103, 106, 109, 112]

    def test_scan_negative_stride(self):
        pages = page_sequence(traclib.scan(1, 100, 3, stride=-1, blocks_per_page=1))
        assert pages == [100, 99, 98]

    def test_ladder_structure(self):
        pages = page_sequence(
            traclib.ladder(1, 0, (0, 5, 11), steps=2, rise=1, blocks_per_page=1)
        )
        assert pages == [0, 5, 11, 1, 6, 12]

    def test_ripple_is_permutation_with_hops(self):
        rng = random.Random(1)
        pages = page_sequence(
            traclib.ripple(1, 0, 60, rng, hop_probability=0.0, blocks_per_page=1)
        )
        assert sorted(pages) == list(range(60))

    def test_interleave_preserves_all_accesses(self):
        rng = random.Random(2)
        a = traclib.scan(1, 0, 10, blocks_per_page=2)
        b = traclib.scan(1, 100, 10, blocks_per_page=2)
        merged = list(traclib.interleave([a, b], rng, chunk_pages=2, blocks_per_page=2))
        assert len(merged) == 40
        pages = {vaddr >> 12 for _, vaddr in merged}
        assert pages == set(range(10)) | set(range(100, 110))

    def test_sprinkle_adds_noise(self):
        rng = random.Random(3)
        base = traclib.scan(1, 0, 50, blocks_per_page=1)
        noisy = list(
            traclib.sprinkle(base, 1, 10_000, 16, rng, probability=0.5, blocks_per_page=1)
        )
        noise_pages = {v >> 12 for _, v in noisy if (v >> 12) >= 10_000}
        assert noise_pages

    def test_random_gather_zipf_skews_low(self):
        rng = random.Random(4)
        accesses = list(
            traclib.random_gather(1, 0, 1000, 500, rng, blocks_per_page=1,
                                  zipf_exponent=1.5)
        )
        pages = [v >> 12 for _, v in accesses]
        low = sum(1 for p in pages if p < 100)
        assert low > len(pages) * 0.3  # heavily skewed toward the head


class TestAuxiliaryWorkloads:
    def test_kv_cache_buildable_and_bounded(self):
        wl = build("kv-cache", seed=3, objects=200, operations=500)
        pages = {vaddr >> 12 for _, vaddr in wl.trace()}
        assert len(pages) <= wl.footprint_pages
        assert wl.footprint_pages > 200  # index + multi-page values

    def test_kv_cache_zipf_skew(self):
        wl = build("kv-cache", seed=3, objects=500, operations=2000)
        from collections import Counter

        pages = Counter(vaddr >> 12 for _, vaddr in wl.trace())
        counts = sorted(pages.values(), reverse=True)
        # The hot head dominates: top 10% of pages take at least ~2x
        # their uniform share of visits.
        head = sum(counts[: max(len(counts) // 10, 1)])
        assert head > 0.18 * sum(counts)

    def test_scan_with_workingset_regions(self):
        wl = build("scan-with-workingset", scan_pages=300, working_set_pages=60,
                   passes=1)
        pages = {vaddr >> 12 for _, vaddr in wl.trace()}
        vmas = wl.processes[0].vmas
        scan_lo = vmas[0][0]
        ws_lo = vmas[1][0]
        assert any(scan_lo <= p < scan_lo + 300 for p in pages)
        assert any(ws_lo <= p < ws_lo + 60 for p in pages)

    def test_kv_cache_deterministic(self):
        import itertools

        a = list(itertools.islice(build("kv-cache", seed=5).trace(), 3000))
        b = list(itertools.islice(build("kv-cache", seed=5).trace(), 3000))
        assert a == b
