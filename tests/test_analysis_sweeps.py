"""Tests for the parameter-sweep harness."""

import pytest

from repro.analysis.sweeps import SweepPoint, sweep
from tests.conftest import quiet_fabric


@pytest.fixture(scope="module")
def small_sweep():
    return sweep(
        workloads=["stream-simple"],
        systems=["fastswap", "hopp"],
        fractions=[0.25, 0.5],
        seed=3,
        fabric=quiet_fabric(),
        workload_kwargs={"stream-simple": dict(npages=200, passes=2)},
    )


class TestSweep:
    def test_cross_product_covered(self, small_sweep):
        assert len(small_sweep.points) == 4
        combos = {(p.system, p.fraction) for p in small_sweep.points}
        assert combos == {
            ("fastswap", 0.25), ("fastswap", 0.5),
            ("hopp", 0.25), ("hopp", 0.5),
        }

    def test_metric_extraction(self, small_sweep):
        point = SweepPoint("stream-simple", "hopp", 0.5, 3)
        accuracy = small_sweep.metric(point, "accuracy")
        assert 0.0 <= accuracy <= 1.0
        np_value = small_sweep.metric(point, "normalized_performance")
        assert 0.0 < np_value <= 1.05

    def test_series_pivot(self, small_sweep):
        series = small_sweep.series("normalized_performance")
        assert set(series) == {"fastswap", "hopp"}
        for label, values in series.items():
            xs = [x for x, _ in values]
            assert xs == sorted(xs) == [0.25, 0.5]

    def test_hopp_dominates_in_sweep(self, small_sweep):
        series = small_sweep.series("normalized_performance")
        for (_, fast_y), (_, hopp_y) in zip(series["fastswap"], series["hopp"]):
            assert hopp_y > fast_y

    def test_to_rows(self, small_sweep):
        rows = small_sweep.to_rows(["accuracy", "coverage"])
        assert len(rows) == 4
        assert all(len(row) == 5 for row in rows)

    def test_unknown_metric_raises(self, small_sweep):
        point = small_sweep.points[0]
        with pytest.raises(KeyError):
            small_sweep.metric(point, "bogus")
