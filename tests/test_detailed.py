"""Tests for the detailed cache-filter mode (Section II-D study)."""

import itertools

from repro.memsim.cache import Cache, CacheHierarchy
from repro.sim.detailed import (
    CacheFilter,
    expand_to_references,
    mmu_vs_mc_volumes,
)
from repro.workloads import build


class TestCacheFilter:
    def test_repeated_line_filtered(self):
        cache_filter = CacheFilter(
            CacheHierarchy(levels=[Cache(size_kb=4, ways=2, name="LLC")])
        )
        trace = [(1, 0x1000)] * 10
        misses = list(cache_filter.filter(trace))
        assert len(misses) == 1
        assert cache_filter.references == 10

    def test_streaming_misses_pass_through(self):
        cache_filter = CacheFilter(
            CacheHierarchy(levels=[Cache(size_kb=4, ways=2, name="LLC")])
        )
        trace = [(1, i << 6) for i in range(1000)]
        misses = list(cache_filter.filter(trace))
        # A stream larger than the cache misses on every new line.
        assert len(misses) == 1000

    def test_report(self):
        cache_filter = CacheFilter()
        list(cache_filter.filter([(1, 0), (1, 0), (1, 64)]))
        report = cache_filter.report
        assert report.mmu_accesses == 3
        assert report.llc_misses == 2
        assert report.reduction_factor == 1.5


class TestExpandToReferences:
    def test_volume_amplified(self):
        trace = [(1, i << 6) for i in range(32)]
        expanded = list(expand_to_references(trace, repeats=4, unroll=16))
        assert len(expanded) == 32 * 4

    def test_original_accesses_preserved_in_order(self):
        trace = [(1, i << 6) for i in range(32)]
        expanded = list(expand_to_references(trace, repeats=3, unroll=8))
        positions = [expanded.index(access) for access in trace]
        assert positions == sorted(positions)

    def test_no_new_pages_introduced(self):
        trace = [(1, i << 12) for i in range(20)]
        expanded = expand_to_references(trace, repeats=5)
        assert {v >> 12 for _, v in expanded} == set(range(20))


class TestMmuVsMcStudy:
    def test_locality_heavy_workload_filters_most(self):
        """Section II-D's claim: the MC sees far fewer references than
        the MMU, and more in-cache locality means more filtering."""
        stream = build("stream-simple", seed=1, npages=300, passes=1)
        graph = build("graphx-bfs", seed=1, edge_pages=400, vertex_pages=80)
        stream_report = mmu_vs_mc_volumes(
            itertools.islice(stream.trace(), 10_000), repeats=8
        )
        graph_report = mmu_vs_mc_volumes(
            itertools.islice(graph.trace(), 10_000), repeats=8
        )
        assert stream_report.reduction_factor > 2.0
        assert graph_report.reduction_factor > stream_report.reduction_factor

    def test_zero_misses_reduction_factor(self):
        from repro.sim.detailed import VolumeReport

        assert VolumeReport(100, 0).reduction_factor == 0.0
