"""Tests for streaming statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import (
    CounterSet,
    Histogram,
    RunningStat,
    geometric_mean,
    safe_ratio,
)


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert stat.min is None and stat.max is None

    def test_single_value(self):
        stat = RunningStat()
        stat.add(5.0)
        assert stat.mean == 5.0
        assert stat.variance == 0.0
        assert stat.min == 5.0 and stat.max == 5.0

    def test_known_sequence(self):
        stat = RunningStat()
        stat.extend([1.0, 2.0, 3.0, 4.0])
        assert stat.mean == pytest.approx(2.5)
        assert stat.variance == pytest.approx(1.25)
        assert stat.stddev == pytest.approx(math.sqrt(1.25))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_batch_formulas(self, values):
        stat = RunningStat()
        stat.extend(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert stat.mean == pytest.approx(mean, rel=1e-6, abs=1e-6)
        assert stat.variance == pytest.approx(variance, rel=1e-6, abs=1e-3)
        assert stat.min == min(values)
        assert stat.max == max(values)

    def test_merge_empty_into_empty(self):
        stat = RunningStat()
        stat.merge(RunningStat())
        assert stat.count == 0 and stat.min is None and stat.max is None

    def test_merge_into_empty_copies(self):
        other = RunningStat()
        other.extend([1.0, 3.0])
        stat = RunningStat()
        stat.merge(other)
        assert stat.count == 2
        assert stat.mean == pytest.approx(2.0)
        assert stat.min == 1.0 and stat.max == 3.0

    def test_merge_empty_is_noop(self):
        stat = RunningStat()
        stat.extend([1.0, 3.0])
        stat.merge(RunningStat())
        assert stat.count == 2 and stat.mean == pytest.approx(2.0)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=100),
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_sequential(self, left, right):
        merged = RunningStat()
        merged.extend(left)
        other = RunningStat()
        other.extend(right)
        merged.merge(other)
        sequential = RunningStat()
        sequential.extend(left + right)
        assert merged.count == sequential.count
        assert merged.mean == pytest.approx(sequential.mean, rel=1e-6, abs=1e-6)
        assert merged.variance == pytest.approx(
            sequential.variance, rel=1e-6, abs=1e-3
        )
        assert merged.min == sequential.min
        assert merged.max == sequential.max


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(bounds=[1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.add(value)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.total == 4

    def test_quantile_monotone(self):
        hist = Histogram()
        for value in range(1, 1001):
            hist.add(float(value))
        q50 = hist.quantile(0.5)
        q90 = hist.quantile(0.9)
        assert q50 <= q90
        assert hist.quantile(0.0) <= q50

    def test_quantile_empty(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_stat_tracks_values(self):
        hist = Histogram()
        hist.add(3.0)
        hist.add(5.0)
        assert hist.stat.mean == pytest.approx(4.0)

    def test_quantile_single_sample(self):
        hist = Histogram(bounds=[1.0, 10.0, 100.0])
        hist.add(5.0)
        # One sample in the (1, 10] bucket: every quantile reports its
        # upper bound.
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(0.99) == 10.0

    def test_quantile_overflow_bucket_reports_observed_max(self):
        hist = Histogram(bounds=[1.0])
        hist.add(250.0)
        assert hist.quantile(0.99) == 250.0

    def test_quantile_known_distribution(self):
        hist = Histogram(bounds=[10.0, 20.0, 30.0])
        for value in [5.0] * 90 + [15.0] * 9 + [25.0]:
            hist.add(value)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(0.95) == 20.0
        assert hist.quantile(1.0) == 30.0

    def test_merge_adds_buckets_and_stats(self):
        a = Histogram(bounds=[1.0, 10.0])
        b = Histogram(bounds=[1.0, 10.0])
        a.add(0.5)
        a.add(5.0)
        b.add(5.0)
        b.add(50.0)
        a.merge(b)
        assert a.counts == [1, 2, 1]
        assert a.total == 4
        assert a.stat.count == 4
        assert a.stat.max == 50.0

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[1.0]).merge(Histogram(bounds=[2.0]))

    def test_merge_preserves_quantiles(self):
        split_a, split_b, whole = Histogram(), Histogram(), Histogram()
        for value in range(1, 501):
            split_a.add(float(value))
            whole.add(float(value))
        for value in range(501, 1001):
            split_b.add(float(value))
            whole.add(float(value))
        split_a.merge(split_b)
        for q in (0.5, 0.9, 0.99):
            assert split_a.quantile(q) == whole.quantile(q)


class TestCounterSet:
    def test_bump_and_get(self):
        counters = CounterSet()
        counters.bump("faults")
        counters.bump("faults", 2)
        assert counters.get("faults") == 3
        assert counters["faults"] == 3
        assert counters.get("other") == 0

    def test_as_dict_is_copy(self):
        counters = CounterSet()
        counters.bump("x")
        exported = counters.as_dict()
        exported["x"] = 99
        assert counters.get("x") == 1


class TestRatios:
    def test_safe_ratio(self):
        assert safe_ratio(1, 2) == 0.5
        assert safe_ratio(1, 0) == 0.0
        assert safe_ratio(0, 0) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)  # skips zeros

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_geometric_mean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) * 0.999 <= gm <= max(values) * 1.001
