"""Shared test fixtures and helpers."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.common.types import StreamObservation
from repro.net.rdma import FabricConfig
from repro.sim.machine import Machine, MachineConfig


def make_observation(
    vpns: Sequence[int],
    pid: int = 1,
    stream_id: int = 0,
    timestamp_us: float = 0.0,
) -> StreamObservation:
    """Build a StreamObservation from a raw VPN history (oldest first)."""
    vpns = list(vpns)
    strides = [b - a for a, b in zip(vpns, vpns[1:])]
    return StreamObservation(
        pid=pid,
        vpn=vpns[-1],
        stride=strides[-1] if strides else 0,
        vpn_history=tuple(vpns),
        stride_history=tuple(strides),
        stream_id=stream_id,
        timestamp_us=timestamp_us,
    )


def quiet_fabric(seed: int = 1) -> FabricConfig:
    """A deterministic fabric with no jitter or spikes, for unit tests
    that assert exact latencies."""
    return FabricConfig(jitter_us=0.0, spike_probability=0.0, seed=seed)


@pytest.fixture
def small_machine() -> Machine:
    """A machine with 64 local pages, one process, no prefetcher."""
    machine = Machine(
        MachineConfig(local_memory_pages=64, fabric=quiet_fabric(), watermark_slack=4)
    )
    machine.register_process(1)
    machine.add_vma(1, 0, 4096, "test")
    return machine


def touch_pages(machine: Machine, pid: int, vpns, blocks: int = 1) -> None:
    """Access the first ``blocks`` cachelines of every page in order."""
    for vpn in vpns:
        for block in range(blocks):
            machine.access(pid, (vpn << 12) | (block << 6))
