"""Tests for multi-channel hot page detection (Section III-B)."""

import pytest

from repro.baselines.fastswap import FastswapPrefetcher
from repro.hopp.hpd import HotPageDetector, MultiChannelHpd
from repro.hopp.system import HoppConfig, HoppDataPlane
from repro.sim.machine import Machine, MachineConfig
from repro.sim.runner import collect, make_machine
from repro.sim.systems import SystemSpec
from repro.workloads import build
from tests.conftest import quiet_fabric


def block_addr(ppn: int, block: int) -> int:
    return (ppn << 12) | (block << 6)


class TestMultiChannelHpd:
    def test_interleaved_reduces_threshold(self):
        hpd = MultiChannelHpd(channels=2, threshold=8, interleaved=True)
        assert hpd.per_channel_threshold == 4

    def test_non_interleaved_keeps_threshold(self):
        hpd = MultiChannelHpd(channels=2, threshold=8, interleaved=False)
        assert hpd.per_channel_threshold == 8

    def test_threshold_floor_is_one(self):
        hpd = MultiChannelHpd(channels=16, threshold=8, interleaved=True)
        assert hpd.per_channel_threshold == 1

    def test_interleaved_channel_mapping(self):
        hpd = MultiChannelHpd(channels=2, interleaved=True)
        assert hpd.channel_of(block_addr(5, 0)) != hpd.channel_of(block_addr(5, 1))

    def test_non_interleaved_page_mapping(self):
        hpd = MultiChannelHpd(channels=2, interleaved=False)
        assert hpd.channel_of(block_addr(5, 0)) == hpd.channel_of(block_addr(5, 63))
        assert hpd.channel_of(block_addr(5, 0)) != hpd.channel_of(block_addr(6, 0))

    def test_hot_page_still_detected_across_channels(self):
        """A full page visit extracts the page on both channels (the
        repeated extraction the framework de-duplicates)."""
        hpd = MultiChannelHpd(channels=2, threshold=8, interleaved=True)
        hot = [
            hpd.process(block_addr(9, block))
            for block in range(16)
        ]
        extracted = [p for p in hot if p is not None]
        assert 9 in extracted
        # Both channels eventually extract it: repeated extraction.
        assert len(extracted) == 2

    def test_aggregate_stats(self):
        hpd = MultiChannelHpd(channels=2, threshold=8, interleaved=True)
        for block in range(16):
            hpd.process(block_addr(3, block))
        assert hpd.accesses == 16
        assert hpd.hot_pages == 2
        assert hpd.hot_page_ratio == pytest.approx(2 / 16)
        assert hpd.bandwidth_overhead > 0

    def test_single_channel_equivalent_to_plain_hpd(self):
        multi = MultiChannelHpd(channels=1, threshold=8)
        plain = HotPageDetector(threshold=8)
        for page in range(5):
            for block in range(16):
                addr = block_addr(page, block)
                assert multi.process(addr) == plain.process(addr)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiChannelHpd(channels=0)


def hopp_with_channels(channels: int) -> SystemSpec:
    def builder(config: MachineConfig) -> Machine:
        machine = Machine(config, fault_prefetcher=FastswapPrefetcher())
        plane = HoppDataPlane(machine, HoppConfig(mc_channels=channels))
        machine.hopp = plane
        machine.controller.add_tap(plane.on_mc_access)
        return machine

    return SystemSpec(name=f"hopp-{channels}ch", builder=builder)


class TestMultiChannelSystem:
    def test_two_channel_system_matches_single_channel_coverage(self):
        """Per Section III-B: reduced N + de-dup in the framework keeps
        prefetching effective with interleaved channels."""
        workload = build("stream-simple", seed=3, npages=600, passes=2)
        results = {}
        for channels in (1, 2):
            machine = make_machine(
                workload, hopp_with_channels(channels), 0.5, quiet_fabric()
            )
            machine.run(workload.trace())
            results[channels] = collect(machine, f"{channels}ch", workload.name)
        assert results[2].coverage >= results[1].coverage - 0.05
        assert results[2].accuracy > 0.9

    def test_dedup_absorbs_repeated_extractions(self):
        workload = build("stream-simple", seed=3, npages=400, passes=1)
        machine = make_machine(
            workload, hopp_with_channels(2), 4.0, quiet_fabric()
        )
        machine.run(workload.trace())
        # Two channels extract each page once each; the STT drops the
        # second extraction as a duplicate.
        assert machine.hopp.stt.duplicates_dropped > 0
