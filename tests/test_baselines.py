"""Tests for the baseline fault-time prefetchers (Fastswap, Leap,
Depth-N, VMA read-ahead, no-prefetch)."""

import pytest

from repro.baselines.base import NoPrefetch
from repro.baselines.depthn import DepthNPrefetcher
from repro.baselines.fastswap import FastswapPrefetcher
from repro.baselines.leap import LeapPrefetcher
from repro.baselines.vma_readahead import VmaReadaheadPrefetcher
from repro.kernel.swap import SwapSpace
from repro.kernel.vma import VmaRegistry


class StubMachine:
    """Just enough machine surface for the fault-time prefetchers."""

    def __init__(self):
        self.swap_space = SwapSpace()
        self.vmas = VmaRegistry()


class TestNoPrefetch:
    def test_returns_nothing(self):
        assert NoPrefetch().on_fault(1, 5, 0, 0.0, StubMachine()) == []
        assert NoPrefetch().inject_pte is False


class TestFastswap:
    def test_prefetches_swap_slot_neighbors(self):
        machine = StubMachine()
        slots = {vpn: machine.swap_space.allocate(1, vpn) for vpn in range(20)}
        prefetcher = FastswapPrefetcher(initial_window=8, max_window=8)
        targets = prefetcher.on_fault(1, 10, slots[10], 0.0, machine)
        # Window 8 around slot 10 (slots == vpns here by allocation order).
        assert (1, 10) not in targets
        assert len(targets) == 8
        assert (1, 9) in targets and (1, 14) in targets

    def test_never_swapped_page_no_prefetch(self):
        prefetcher = FastswapPrefetcher()
        assert prefetcher.on_fault(1, 10, -1, 0.0, StubMachine()) == []

    def test_window_shrinks_on_waste(self):
        prefetcher = FastswapPrefetcher(initial_window=8)
        for _ in range(8):
            prefetcher.on_prefetch_wasted(1, 0)
        prefetcher._adapt()
        assert prefetcher.window == 4

    def test_window_grows_back_on_hits(self):
        prefetcher = FastswapPrefetcher(initial_window=8)
        prefetcher.window = 2
        for _ in range(4):
            prefetcher.on_prefetch_hit(1, 0, 0.0)
        prefetcher._adapt()
        assert prefetcher.window == 4

    def test_window_bounds(self):
        prefetcher = FastswapPrefetcher(initial_window=1, max_window=8)
        for _ in range(50):
            prefetcher.on_prefetch_hit(1, 0, 0.0)
            prefetcher._adapt()
        assert prefetcher.window <= 8

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FastswapPrefetcher(initial_window=0)
        with pytest.raises(ValueError):
            FastswapPrefetcher(initial_window=9, max_window=8)

    def test_slot_adjacency_not_vpn_adjacency(self):
        """Fastswap clusters on eviction order, not virtual adjacency —
        the flaw VMA read-ahead fixes (Section VI-E)."""
        machine = StubMachine()
        # Pages evicted in interleaved order: 0, 100, 1, 101, 2, 102 ...
        order = [vpn for pair in zip(range(5), range(100, 105)) for vpn in pair]
        slots = {vpn: machine.swap_space.allocate(1, vpn) for vpn in order}
        prefetcher = FastswapPrefetcher(initial_window=2)
        targets = prefetcher.on_fault(1, 1, slots[1], 0.0, machine)
        # Neighbors in slot space are from the *other* stream.
        assert (1, 100) in targets or (1, 101) in targets


class TestLeap:
    def feed_faults(self, prefetcher, vpns, pid=1):
        machine = StubMachine()
        out = []
        for vpn in vpns:
            out = prefetcher.on_fault(pid, vpn, 0, 0.0, machine)
        return out

    def test_single_stream_majority_found(self):
        prefetcher = LeapPrefetcher(window=8)
        targets = self.feed_faults(prefetcher, range(100, 110))
        assert prefetcher.majority_found >= 1
        assert (1, 110) in targets

    def test_stride_2_stream(self):
        prefetcher = LeapPrefetcher(window=8)
        targets = self.feed_faults(prefetcher, range(100, 120, 2))
        vpns = [vpn for _, vpn in targets]
        assert vpns[0] == 120

    def test_interleaved_streams_confuse_majority(self):
        """Figure 1's lesson: two interleaved streams alias in the
        global fault history and break the majority vote."""
        prefetcher = LeapPrefetcher(window=8, fallback_prefetch=0)
        a = list(range(100, 120, 2))      # stride 2
        b = list(range(5000, 5010))       # stride 1
        interleaved = [vpn for pair in zip(a, b) for vpn in pair]
        self.feed_faults(prefetcher, interleaved)
        # The strides seen are alternating large jumps: no majority.
        assert prefetcher.detect_stride() == 0
        assert prefetcher.fallbacks > 0

    def test_detect_stride_needs_full_window(self):
        prefetcher = LeapPrefetcher(window=8)
        self.feed_faults(prefetcher, range(100, 104))
        assert prefetcher.detect_stride() == 0

    def test_depth_adapts_on_feedback(self):
        prefetcher = LeapPrefetcher(window=8, max_prefetch=8)
        start = prefetcher._depth
        for _ in range(start):
            prefetcher.on_prefetch_wasted(1, 0)
        prefetcher._adapt()
        assert prefetcher._depth == max(1, start // 2)

    def test_negative_targets_filtered(self):
        prefetcher = LeapPrefetcher(window=4)
        targets = self.feed_faults(prefetcher, [30, 20, 10, 0])
        assert all(vpn >= 0 for _, vpn in targets)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LeapPrefetcher(window=1)


class TestDepthN:
    def test_fixed_contiguous_window(self):
        prefetcher = DepthNPrefetcher(depth=4)
        targets = prefetcher.on_fault(1, 100, 0, 0.0, StubMachine())
        assert targets == [(1, 101), (1, 102), (1, 103), (1, 104)]

    def test_injects_ptes(self):
        assert DepthNPrefetcher(depth=16).inject_pte is True

    def test_name_carries_depth(self):
        assert DepthNPrefetcher(depth=32).name == "depth-32"

    def test_no_feedback_no_adaptation(self):
        prefetcher = DepthNPrefetcher(depth=8)
        prefetcher.on_prefetch_wasted(1, 0)  # inherited no-op
        targets = prefetcher.on_fault(1, 0, 0, 0.0, StubMachine())
        assert len(targets) == 8  # unchanged: Depth-N cannot adapt

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DepthNPrefetcher(depth=0)


class TestVmaReadahead:
    def test_window_clipped_to_vma(self):
        machine = StubMachine()
        machine.vmas.for_pid(1).add(100, 10, "heap")  # [100, 110)
        prefetcher = VmaReadaheadPrefetcher(window=8)
        targets = prefetcher.on_fault(1, 108, 0, 0.0, machine)
        vpns = sorted(vpn for _, vpn in targets)
        assert all(100 <= vpn < 110 for vpn in vpns)
        assert 108 not in vpns

    def test_forward_biased_window(self):
        machine = StubMachine()
        machine.vmas.for_pid(1).add(0, 1000)
        prefetcher = VmaReadaheadPrefetcher(window=8)
        targets = prefetcher.on_fault(1, 500, 0, 0.0, machine)
        vpns = [vpn for _, vpn in targets]
        ahead = sum(1 for vpn in vpns if vpn > 500)
        behind = sum(1 for vpn in vpns if vpn < 500)
        assert ahead > behind

    def test_no_vma_still_prefetches_nearby(self):
        prefetcher = VmaReadaheadPrefetcher(window=4)
        targets = prefetcher.on_fault(1, 50, 0, 0.0, StubMachine())
        assert targets  # unclipped window

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            VmaReadaheadPrefetcher(window=0)


class TestLeapEagerEviction:
    class DemotingMachine(StubMachine):
        def __init__(self):
            super().__init__()
            self.demoted = []

        def demote_page(self, pid, vpn):
            self.demoted.append((pid, vpn))
            return True

    def test_previous_hit_demoted_on_next_hit(self):
        prefetcher = LeapPrefetcher(eager_eviction=True)
        machine = self.DemotingMachine()
        prefetcher.on_prefetch_hit(1, 10, 0.0, machine)
        assert machine.demoted == []  # nothing to demote yet
        prefetcher.on_prefetch_hit(1, 11, 1.0, machine)
        assert machine.demoted == [(1, 10)]
        assert prefetcher.eager_demotions == 1

    def test_disabled_eager_eviction(self):
        prefetcher = LeapPrefetcher(eager_eviction=False)
        machine = self.DemotingMachine()
        prefetcher.on_prefetch_hit(1, 10, 0.0, machine)
        prefetcher.on_prefetch_hit(1, 11, 1.0, machine)
        assert machine.demoted == []

    def test_no_machine_handle_is_safe(self):
        prefetcher = LeapPrefetcher(eager_eviction=True)
        prefetcher.on_prefetch_hit(1, 10, 0.0)
        prefetcher.on_prefetch_hit(1, 11, 1.0)
        assert prefetcher.eager_demotions == 0

    def test_demoted_page_becomes_early_victim(self):
        """End to end: a demoted page is reclaimed before hotter ones."""
        from repro.kernel.reclaim import LruPageList

        lru = LruPageList()
        for vpn in range(4):
            lru.insert(1, vpn)
        assert lru.demote(1, 3)
        assert lru.victims(1) == [(1, 3)]
        assert not lru.demote(1, 99)
