"""Tests for the Stream Training Table (Section III-D, Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hopp.stt import StreamTrainingTable


class TestStreamMatching:
    def test_sequential_pages_join_one_stream(self):
        stt = StreamTrainingTable(history_len=4)
        assert stt.feed(1, 100) is None
        assert stt.feed(1, 101) is None
        assert stt.feed(1, 102) is None
        obs = stt.feed(1, 103)
        assert obs is not None
        assert obs.vpn_history == (100, 101, 102, 103)
        assert obs.stride_history == (1, 1, 1)
        assert stt.streams_created == 1

    def test_distance_beyond_delta_starts_new_stream(self):
        stt = StreamTrainingTable(stream_delta=64)
        stt.feed(1, 100)
        stt.feed(1, 100 + 65)
        assert stt.streams_created == 2

    def test_distance_within_delta_joins(self):
        stt = StreamTrainingTable(stream_delta=64)
        stt.feed(1, 100)
        stt.feed(1, 164)
        assert stt.streams_created == 1

    def test_pid_separates_streams(self):
        stt = StreamTrainingTable()
        stt.feed(1, 100)
        stt.feed(2, 101)
        assert stt.streams_created == 2

    def test_closest_stream_wins(self):
        stt = StreamTrainingTable(history_len=4, stream_delta=64)
        stt.feed(1, 100)   # stream A
        stt.feed(1, 160)   # within 64 of A -> joins A (distance 60)
        assert stt.streams_created == 1
        stt.feed(1, 300)   # stream B
        # 310 is within delta of B only.
        stt.feed(1, 310)
        streams = stt.streams()
        assert sorted(len(s.vpns) for s in streams) == [2, 2]

    def test_duplicate_vpn_dropped(self):
        """Repeated hot-page extraction (multi-channel) is de-duplicated
        (Section III-B)."""
        stt = StreamTrainingTable(history_len=4)
        stt.feed(1, 100)
        stt.feed(1, 100)
        assert stt.duplicates_dropped == 1
        entry = stt.streams()[0]
        assert list(entry.vpns) == [100]

    def test_descending_stream(self):
        stt = StreamTrainingTable(history_len=4)
        for vpn in (100, 99, 98):
            stt.feed(1, vpn)
        obs = stt.feed(1, 97)
        assert obs.stride_history == (-1, -1, -1)


class TestObservations:
    def test_no_observation_until_history_full(self):
        stt = StreamTrainingTable(history_len=16)
        for i in range(15):
            assert stt.feed(1, 100 + i) is None
        assert stt.feed(1, 115) is not None
        assert stt.observations_out == 1

    def test_every_subsequent_page_observes(self):
        stt = StreamTrainingTable(history_len=4)
        for i in range(4):
            stt.feed(1, 100 + i)
        for i in range(4, 10):
            assert stt.feed(1, 100 + i) is not None
        assert stt.observations_out == 7

    def test_observation_window_slides(self):
        stt = StreamTrainingTable(history_len=4)
        for i in range(5):
            obs = stt.feed(1, 100 + i)
        assert obs.vpn_history == (101, 102, 103, 104)

    def test_timestamp_propagated(self):
        stt = StreamTrainingTable(history_len=4)
        for i in range(3):
            stt.feed(1, 100 + i, now_us=float(i))
        obs = stt.feed(1, 103, now_us=42.0)
        assert obs.timestamp_us == 42.0

    def test_stream_id_stable(self):
        stt = StreamTrainingTable(history_len=4)
        ids = set()
        for i in range(8):
            obs = stt.feed(1, 100 + i)
            if obs:
                ids.add(obs.stream_id)
        assert len(ids) == 1


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        stt = StreamTrainingTable(entries=2, history_len=4, stream_delta=4)
        stt.feed(1, 0)
        stt.feed(1, 100)
        stt.feed(1, 200)  # evicts the stream at 0
        assert stt.streams_evicted == 1
        assert len(stt) == 2
        # Feeding near the evicted base creates a new stream.
        stt.feed(1, 1)
        assert stt.streams_created == 4

    def test_active_stream_survives_eviction_pressure(self):
        stt = StreamTrainingTable(entries=2, history_len=4, stream_delta=4)
        stt.feed(1, 0)
        for noise in range(10):
            stt.feed(1, 1000 + noise * 100)  # churn the other entry
            stt.feed(1, 1 + noise)           # keep stream 0 hot
        streams = stt.streams()
        # The hot stream kept its (full, maxlen=4) history despite the
        # churn evicting every noise entry.
        assert any(len(s.vpns) == 4 and s.vpns[-1] == 10 for s in streams)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StreamTrainingTable(entries=0)
        with pytest.raises(ValueError):
            StreamTrainingTable(history_len=2)


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 2000)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_observation_consistency(self, pages):
        """Every observation's strides must match its VPN history, the
        newest VPN must equal obs.vpn, and PIDs never mix."""
        stt = StreamTrainingTable(history_len=8)
        for pid, vpn in pages:
            obs = stt.feed(pid, vpn)
            if obs is None:
                continue
            assert obs.pid == pid
            assert obs.vpn == obs.vpn_history[-1] == vpn
            assert len(obs.vpn_history) == 8
            assert len(obs.stride_history) == 7
            derived = tuple(
                b - a for a, b in zip(obs.vpn_history, obs.vpn_history[1:])
            )
            assert derived == obs.stride_history
            assert all(s != 0 for s in obs.stride_history)  # duplicates dropped

    @given(st.lists(st.integers(0, 500), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_table_never_exceeds_capacity(self, vpns):
        stt = StreamTrainingTable(entries=8, history_len=4)
        for vpn in vpns:
            stt.feed(1, vpn)
            assert len(stt) <= 8
