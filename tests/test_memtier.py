"""Memory-tier suite: CXL pool model, tiered placement, migration.

Proves the properties the memory-tier subsystem must hold:

* **byte-identity off** — ``memtier=None`` (the default) produces
  RunResults with no tier keys anywhere, so every pre-tier golden stays
  byte-identical (tests/test_goldens.py pins the actual bytes; here we
  pin the *absence* of the new keys);
* **derivation** — the CXL link is derived from the far link by the
  NUMA-emulation ratio methodology, node tiers label pool-then-far;
* **placement** — hot pages go poolward, cold pages spill past the
  watermark, untiered clusters degrade to interleave;
* **migration** — touch counts and HPD hints promote far-tier pages,
  watermark pressure demotes cold pool pages, and the 5-term slot
  conservation invariant holds on every node throughout (including a
  3-tier chaos run under the invariant sanitizer);
* **observability** — telemetry series reconcile with the section
  counters, and every ``repro_memtier_*_total`` Prometheus family is
  present (zero-valued) even on untiered and deserialized results.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.cluster import ClusterConfig, RemoteMemoryCluster
from repro.common.constants import PAGE_SIZE, T_RDMA_PAGE_US
from repro.memtier import (
    TIER_FAR,
    TIER_POOL,
    MemtierConfig,
    MigrationEngine,
    derive_node_tiers,
)
from repro.net.faults import FaultPlan
from repro.sim import runner
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult
from repro.telemetry import TelemetryConfig, prometheus_snapshot
from repro.workloads import build
from tests.conftest import quiet_fabric, touch_pages


def _tiny_pool(**overrides) -> MemtierConfig:
    base = dict(pool_nodes=1, pool_capacity_pages=128)
    base.update(overrides)
    return MemtierConfig(**base)


def _tiered_machine(memtier=None, local_pages=24, plan=None,
                    check_invariants=False, far_nodes=1):
    machine = Machine(
        MachineConfig(
            local_memory_pages=local_pages,
            fabric=quiet_fabric(),
            watermark_slack=4,
            fault_plan=plan,
            cluster=ClusterConfig(nodes=far_nodes),
            check_invariants=check_invariants,
            memtier=memtier or _tiny_pool(),
        )
    )
    machine.register_process(1)
    machine.add_vma(1, 0, 4096, "test")
    return machine


class TestMemtierConfig:
    def test_defaults_validate(self):
        config = MemtierConfig()
        assert config.pool_nodes == 1
        assert config.cxl_latency_us < T_RDMA_PAGE_US

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(pool_nodes=0),
            dict(pool_capacity_pages=0),
            dict(cxl_latency_us=0.0),
            dict(cxl_gbps=0.0),
            dict(promote_touches=0),
            dict(pool_high_watermark=1.5),
            dict(pool_low_watermark=0.0),
            dict(pool_low_watermark=0.95),  # above the high watermark
            dict(migrate_interval_us=-1.0),
            dict(max_migration_retries=-1),
            dict(hot_set_limit=0),
        ],
    )
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            MemtierConfig(**overrides)

    def test_pool_slower_than_far_rejected(self):
        # A "pool" at RDMA latency inverts the hierarchy.
        with pytest.raises(ValueError):
            MemtierConfig(cxl_latency_us=T_RDMA_PAGE_US)

    def test_cxl_fabric_derived_by_latency_ratio(self):
        far = quiet_fabric().__class__(
            base_latency_us=4.0, jitter_us=0.5, gbps=56.0,
            spike_probability=0.0, seed=3,
        )
        cxl = MemtierConfig(cxl_latency_us=0.8).cxl_fabric_config(far)
        assert cxl.base_latency_us == pytest.approx(0.8)
        # Jitter scales by the same ratio the base latency shrank by.
        assert cxl.jitter_us == pytest.approx(0.5 * 0.8 / 4.0)
        assert cxl.gbps == pytest.approx(256.0)
        assert cxl.seed == far.seed

    def test_cxl_jitter_override_wins(self):
        far = quiet_fabric()
        cxl = MemtierConfig(cxl_jitter_us=0.25).cxl_fabric_config(far)
        assert cxl.jitter_us == pytest.approx(0.25)

    def test_derive_node_tiers_pool_first(self):
        assert derive_node_tiers(2, 1) == (TIER_POOL, TIER_FAR, TIER_FAR)
        with pytest.raises(ValueError):
            derive_node_tiers(0, 1)
        with pytest.raises(ValueError):
            derive_node_tiers(1, 0)


class TestClusterTiers:
    def test_node_tiers_length_must_match(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, node_tiers=("pool",))

    def test_node_tiers_entries_validated(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, node_tiers=("pool", "near"))

    def test_all_pool_rejected(self):
        # The far tier is the backing store; a pure pool has nowhere
        # to demote to.
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, node_tiers=("pool", "pool"))

    def test_tiered_cluster_labels_nodes_and_derives_cxl_link(self):
        cluster = RemoteMemoryCluster(
            ClusterConfig(nodes=2, node_tiers=("pool", "far"),
                          placement="tiered"),
            1024,
            quiet_fabric(),
            memtier=MemtierConfig(),
        )
        pool, far = cluster.nodes
        assert pool.tier == TIER_POOL and far.tier == TIER_FAR
        assert pool.remote.tier == TIER_POOL
        assert (
            pool.fabric.config.base_latency_us
            < far.fabric.config.base_latency_us
        )

    def test_migrate_holder_swaps_in_place(self):
        cluster = RemoteMemoryCluster(
            ClusterConfig(nodes=2, node_tiers=("pool", "far"),
                          placement="tiered"),
            1024,
            quiet_fabric(),
        )
        slot = 5
        holders = cluster.assign(slot, 1, 42)
        holders[0].remote.write(slot, 1, 42)
        source = cluster.holders_of(slot)[0]
        target = 1 - source
        assert cluster.migrate_holder(slot, source, target)
        assert cluster.holders_of(slot) == (target,)
        # Idempotence / error paths: wrong source and existing target
        # are both refused without corrupting the directory.
        assert not cluster.migrate_holder(slot, source, target)
        assert not cluster.migrate_holder(slot, target, target)
        assert cluster.holders_of(slot) == (target,)

    def test_untiered_snapshot_has_no_tier_keys(self):
        cluster = RemoteMemoryCluster(ClusterConfig(), 1024, quiet_fabric())
        snap = cluster.stats_snapshot()
        assert "node_tiers" not in snap
        for node_snap in snap["per_node"]:
            assert "tier" not in node_snap
            assert "tier" not in node_snap["remote"]


class TestTieredPlacement:
    def _cluster(self, hot=None, pool_capacity=None):
        cluster = RemoteMemoryCluster(
            ClusterConfig(nodes=3, node_tiers=("pool", "far", "far"),
                          placement="tiered"),
            1024,
            quiet_fabric(),
            memtier=MemtierConfig(pool_capacity_pages=pool_capacity),
        )
        if hot is not None:
            cluster.memtier_hot = hot
        return cluster

    def test_cold_pages_prefer_the_pool(self):
        cluster = self._cluster()
        assert cluster.placement.place(1, 0, 0, cluster) == 0

    def test_cold_pages_spill_past_high_watermark(self):
        cluster = self._cluster(pool_capacity=10)
        pool = cluster.nodes[0]
        for slot in range(9):  # high watermark = int(0.9 * 10) = 9
            pool.remote.write(slot, 1, slot)
        placed = cluster.placement.place(1, 100, 50, cluster)
        assert cluster.nodes[placed].tier == TIER_FAR

    def test_hot_pages_take_pool_hard_room(self):
        cluster = self._cluster(hot=lambda pid, vpn: True, pool_capacity=10)
        pool = cluster.nodes[0]
        for slot in range(9):
            pool.remote.write(slot, 1, slot)
        # Past the watermark, but a hot page still has hard room.
        assert cluster.placement.place(1, 100, 50, cluster) == 0

    def test_untiered_cluster_degrades_to_interleave(self):
        cluster = RemoteMemoryCluster(
            ClusterConfig(nodes=3, placement="tiered"), 1024, quiet_fabric()
        )
        nodes = [cluster.placement.place(1, vpn, slot, cluster)
                 for slot, vpn in enumerate(range(6))]
        assert nodes == [0, 1, 2, 0, 1, 2]


class TestMachineDerivation:
    def test_memtier_adds_pool_nodes_and_upgrades_placement(self):
        machine = _tiered_machine(far_nodes=2)
        assert machine.cluster.node_count == 3
        assert machine.cluster.node_tiers == (TIER_POOL, TIER_FAR, TIER_FAR)
        assert machine.cluster.placement.name == "tiered"
        assert machine.memtier is not None
        assert machine.cluster.memtier_hot == machine.memtier.is_hot

    def test_explicit_node_tiers_respected(self):
        machine = Machine(
            MachineConfig(
                local_memory_pages=24,
                fabric=quiet_fabric(),
                watermark_slack=4,
                cluster=ClusterConfig(
                    nodes=2, node_tiers=("pool", "far"), placement="tiered"
                ),
                memtier=MemtierConfig(pool_nodes=1),
            )
        )
        # No extra nodes appended: the explicit labeling wins.
        assert machine.cluster.node_count == 2

    def test_untiered_machine_has_no_engine(self):
        machine = Machine(
            MachineConfig(local_memory_pages=24, fabric=quiet_fabric(),
                          watermark_slack=4)
        )
        assert machine.memtier is None


class TestMigration:
    def test_touch_counts_promote_far_pages(self):
        machine = _tiered_machine(
            _tiny_pool(pool_capacity_pages=8, promote_touches=2,
                       hot_promote=False)
        )
        engine = machine.memtier
        far_node = next(
            node for node in machine.cluster.nodes if node.tier == TIER_FAR
        )
        engine.note_demand_read(far_node, 1, 7, 0.0)
        assert not engine.is_hot(1, 7)
        engine.note_demand_read(far_node, 1, 7, 1.0)
        assert engine.is_hot(1, 7)

    def test_note_hot_queues_promotion_of_far_resident_page(self):
        machine = _tiered_machine()
        engine = machine.memtier
        # Park a page on the far node through the real swap/cluster path.
        slot = machine.swap_space.allocate(1, 99)
        far_id = next(
            node.node_id for node in machine.cluster.nodes
            if node.tier == TIER_FAR
        )
        machine.cluster.nodes[far_id].remote.write(slot, 1, 99)
        machine.cluster._holders[slot] = [far_id]
        engine.note_hot(1, 99, 0.0)
        assert engine.pending_tasks == 1
        engine.flush(0.0)
        assert engine.promotions == 1
        holders = machine.cluster.holders_of(slot)
        assert machine.cluster.nodes[holders[0]].tier == TIER_POOL
        # Conservation: the far node migrated the page out, the pool
        # node wrote it in.
        assert machine.cluster.nodes[far_id].remote.pages_migrated_out == 1
        for node in machine.cluster.nodes:
            assert node.remote.conserved

    def test_watermark_pressure_demotes_coldest_first(self):
        machine = _tiered_machine(_tiny_pool(pool_capacity_pages=10))
        engine = machine.memtier
        pool = next(
            node for node in machine.cluster.nodes if node.tier == TIER_POOL
        )
        slots = [machine.swap_space.allocate(1, vpn) for vpn in range(10)]
        for slot, vpn in zip(slots, range(10)):
            pool.remote.write(slot, 1, vpn)
            machine.cluster._holders[slot] = [pool.node_id]
            engine.note_writeback(pool, slot, 1, vpn, 0.0)
        # 10 stored > high (9): drain to low (7) => 3 demotions, oldest
        # writebacks first.
        engine.flush(0.0)
        assert engine.demotions == 3
        assert pool.remote.pages_stored == 7
        demoted = [
            slot for slot in slots
            if machine.cluster.nodes[
                machine.cluster.holders_of(slot)[0]
            ].tier == TIER_FAR
        ]
        assert demoted == slots[:3]
        for node in machine.cluster.nodes:
            assert node.remote.conserved

    def test_pressure_beats_hotness_when_everything_is_hot(self):
        machine = _tiered_machine(_tiny_pool(pool_capacity_pages=10))
        engine = machine.memtier
        pool = next(
            node for node in machine.cluster.nodes if node.tier == TIER_POOL
        )
        for vpn in range(10):
            engine.note_hot(1, vpn, 0.0)
            slot = machine.swap_space.allocate(1, vpn)
            pool.remote.write(slot, 1, vpn)
            machine.cluster._holders[slot] = [pool.node_id]
            engine.note_writeback(pool, slot, 1, vpn, 0.0)
        engine.flush(0.0)
        # Hot pages are spared only while cold candidates exist; a pool
        # wedged full of hot pages must still drain.
        assert engine.demotions == 3
        assert pool.remote.pages_stored == 7

    def test_migration_bytes_track_page_copies(self):
        machine = _tiered_machine()
        engine = machine.memtier
        engine.migration_reads = 3
        engine.migration_writes = 2
        assert engine.migration_bytes == 5 * PAGE_SIZE


class TestEndToEnd:
    def test_tiered_run_conserves_and_reports(self):
        workload = build("kv-cache", seed=7)
        result = runner.run(
            workload, "hopp", 0.4, quiet_fabric(7),
            memtier=_tiny_pool(),
        )
        section = result.memtier
        assert section is not None
        assert section["pool_nodes"] == 1 and section["far_nodes"] == 1
        assert section["pool_demand_reads"] + section["far_demand_reads"] > 0
        assert section["promotions"] > 0
        assert section["demotions"] > 0
        assert section["migration_bytes"] == (
            (section["migration_reads"] + section["migration_writes"])
            * PAGE_SIZE
        )
        for snap in result.node_stats:
            remote = snap["remote"]
            assert remote["pages_written"] == (
                remote["pages_stored"]
                + remote["pages_overwritten"]
                + remote["pages_released"]
                + remote["pages_lost"]
                + remote.get("pages_migrated_out", 0)
            )

    def test_three_tier_chaos_run_under_sanitizer(self):
        workload = build("kv-cache", seed=7)
        result = runner.run(
            workload, "hopp", 0.4, quiet_fabric(7),
            fault_plan=FaultPlan.chaos(7),
            check_invariants=True,
            memtier=_tiny_pool(),
        )
        assert result.invariant_checks > 0
        for snap in result.node_stats:
            remote = snap["remote"]
            assert remote["pages_written"] == (
                remote["pages_stored"]
                + remote["pages_overwritten"]
                + remote["pages_released"]
                + remote["pages_lost"]
                + remote.get("pages_migrated_out", 0)
            )

    def test_cxl_beats_rdma_latency(self):
        workload = build("stream-simple", seed=7)
        tiered = runner.run(
            workload, "hopp", 0.5, quiet_fabric(7), memtier=MemtierConfig()
        )
        untiered = runner.run(workload, "hopp", 0.5, quiet_fabric(7))
        assert tiered.completion_time_us < untiered.completion_time_us

    def test_memtier_section_round_trips(self):
        workload = build("stream-simple", seed=7)
        result = runner.run(
            workload, "hopp", 0.5, quiet_fabric(7), memtier=MemtierConfig()
        )
        clone = RunResult.from_dict(result.to_dict(full=True))
        assert clone.memtier == result.memtier

    def test_untiered_result_has_no_memtier_keys(self):
        workload = build("stream-simple", seed=7)
        result = runner.run(workload, "hopp", 0.5, quiet_fabric(7))
        assert result.memtier is None
        payload = result.to_dict(full=True)
        assert "memtier" not in payload
        for snap in result.node_stats:
            assert "tier" not in snap.get("remote", snap)


class TestObservability:
    def _instrumented(self):
        workload = build("kv-cache", seed=7)
        return runner.run(
            workload, "hopp", 0.4, quiet_fabric(7),
            telemetry=TelemetryConfig(epoch_us=500.0),
            memtier=_tiny_pool(),
        )

    def test_series_reconcile_with_section(self):
        result = self._instrumented()
        series = result.telemetry["timeseries"]["series"]
        section = result.memtier
        assert sum(series["memtier_pool_reads"]) == section["pool_demand_reads"]
        assert sum(series["memtier_far_reads"]) == section["far_demand_reads"]
        assert sum(series["memtier_promotions"]) == section["promotions"]
        assert sum(series["memtier_demotions"]) == section["demotions"]
        assert section["promotions"] > 0 and section["demotions"] > 0

    def test_prometheus_families_on_tiered_run(self):
        text = prometheus_snapshot(self._instrumented())
        assert "repro_memtier_promotions_total{" in text
        assert "repro_memtier_migration_bytes_total{" in text

    def test_prometheus_families_always_present_when_untiered(self):
        workload = build("stream-simple", seed=7)
        result = runner.run(workload, "hopp", 0.5, quiet_fabric(7))
        text = prometheus_snapshot(result)
        for suffix in (
            "pool_demand_reads", "far_demand_reads", "pool_prefetch_reads",
            "far_prefetch_reads", "pool_writebacks", "far_writebacks",
            "promotions", "demotions", "migration_reads",
            "migration_writes", "migration_bytes", "migration_retries",
            "migrations_skipped", "hot_hints",
        ):
            line = f"# TYPE repro_memtier_{suffix}_total counter"
            assert line in text
        assert 'repro_memtier_promotions_total{system="hopp"' in text

    def test_prometheus_families_on_deserialized_result(self):
        workload = build("stream-simple", seed=7)
        result = runner.run(workload, "hopp", 0.5, quiet_fabric(7))
        clone = RunResult.from_dict(result.to_dict(full=True))
        text = prometheus_snapshot(clone)
        assert "repro_memtier_promotions_total{" in text


class TestCli:
    def test_run_with_mem_tiers_prints_tier_rows(self, capsys):
        from repro.cli import main

        code = main([
            "run", "-w", "stream-simple", "-f", "0.5",
            "--mem-tiers", "1", "--pool-capacity", "256", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory tiers (pool + far nodes)" in out
        assert "tier demand reads (pool/far)" in out
        assert "pages promoted / demoted" in out

    def test_run_without_mem_tiers_has_no_tier_rows(self, capsys):
        from repro.cli import main

        code = main([
            "run", "-w", "stream-simple", "-f", "0.5", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory tiers" not in out
