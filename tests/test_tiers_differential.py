"""Differential tests: the tier algorithms vs independent brute-force
reference implementations.

The references are written from the paper's prose alone (not from the
library code), so agreement on random inputs is strong evidence the
implementations encode Algorithms 1 and 2 and the SSP rule correctly.
"""

from collections import Counter
from typing import Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hopp import lsp, rsp, ssp
from tests.conftest import make_observation

L = 16

histories = st.lists(
    st.integers(-30, 30).filter(lambda s: s != 0),
    min_size=L - 1,
    max_size=L - 1,
)


def vpns_from_strides(strides, base=100_000):
    vpns = [base]
    for stride in strides:
        vpns.append(vpns[-1] + stride)
    return vpns


# -- references, straight from the paper's text --------------------------------


def reference_ssp(strides) -> Optional[int]:
    """'A stride is dominant in a stride_history if a stride value has
    occurred more than or equal to L/2 times.'"""
    counts = Counter(s for s in strides if s != 0)
    for stride, count in counts.most_common():
        if count >= L // 2:
            return stride
    return None


def reference_lsp(vpns, strides) -> Optional[Tuple[int, int]]:
    """Algorithm 1, literally: pattern_target is the last two strides;
    scan older positions for matches; next_stride and stride_sum get
    majority votes."""
    n = len(vpns)
    target = (strides[-2], strides[-1])
    next_strides = []
    stride_sums = []
    last_end = n - 1
    for end in range(n - 2, 1, -1):
        if (strides[end - 2], strides[end - 1]) == target:
            next_strides.append(strides[end])
            stride_sums.append(vpns[last_end] - vpns[end])
            last_end = end
    if not next_strides:
        return None
    stride_target = Counter(next_strides).most_common(1)[0][0]
    pattern_stride = Counter(stride_sums).most_common(1)[0][0]
    return stride_target, pattern_stride


def reference_rsp(strides, max_stride=2) -> bool:
    """Algorithm 2, literally."""
    ripple_num = 0
    if abs(strides[-1]) <= max_stride:
        ripple_num += 1
    accumulate = 0
    for i in range(len(strides) - 2, -1, -1):
        accumulate += strides[i]
        if abs(accumulate) <= max_stride:
            ripple_num += 1
            accumulate = 0
    return ripple_num >= L // 2


class TestDifferential:
    @given(histories)
    @settings(max_examples=200, deadline=None)
    def test_ssp_matches_reference(self, strides):
        obs = make_observation(vpns_from_strides(strides))
        decision = ssp.train(obs)
        expected = reference_ssp(strides)
        if expected is None:
            assert decision is None
        else:
            assert decision is not None
            # Ties between equally-frequent strides may break either
            # way; the chosen stride must itself be dominant.
            chosen = decision.per_offset_stride
            assert Counter(strides)[chosen] >= L // 2

    @given(histories)
    @settings(max_examples=200, deadline=None)
    def test_lsp_matches_reference(self, strides):
        vpns = vpns_from_strides(strides)
        obs = make_observation(vpns)
        decision = lsp.train(obs)
        expected = reference_lsp(vpns, strides)
        if expected is None:
            assert decision is None
        else:
            stride_target, pattern_stride = expected
            if pattern_stride == 0:
                # The library rejects degenerate zero-period ladders.
                assert decision is None
            else:
                assert decision is not None
                assert decision.fixed_delta == stride_target
                assert decision.per_offset_stride == pattern_stride

    @given(histories)
    @settings(max_examples=200, deadline=None)
    def test_rsp_matches_reference(self, strides):
        obs = make_observation(vpns_from_strides(strides))
        decision = rsp.train(obs)
        assert (decision is not None) == reference_rsp(strides)
        if decision is not None:
            assert decision.per_offset_stride == 1
