"""Tests for the offline pattern classifier and report formatting."""

import pytest

from repro.analysis.patterns import (
    PatternBreakdown,
    analyze_trace,
    classify_window,
    page_sequence,
)
from repro.analysis.report import render_series, render_table


class TestClassifyWindow:
    def test_simple(self):
        assert classify_window(list(range(100, 116))) == "simple"

    def test_simple_with_stride(self):
        assert classify_window(list(range(0, 64, 4))) == "simple"

    def test_ladder(self):
        vpns = []
        for j in range(4):
            for off in (0, 9, 22, 43):
                vpns.append(1000 + off + 2 * j)
        assert classify_window(vpns[:16]) == "ladder"

    def test_ripple(self):
        # Net stride 1 with adjacent swaps; no dominant stride, and the
        # swap pattern must not recur as a ladder: vary the swaps.
        # A net-stride-1 window with swaps classifies as one of the
        # stream shapes (never irregular); the cascade order decides
        # which: swap-heavy windows can still show a dominant stride.
        vpns = [0, 2, 1, 3, 4, 6, 5, 8, 7, 9, 11, 10, 12, 14, 13, 15]
        assert classify_window(vpns) != "irregular"
        # A window built to defeat SSP and LSP lands on ripple.
        vpns = [0, 1, 3, 2, 4, 5, 6, 9, 7, 8, 10, 12, 11, 13, 14, 16]
        assert classify_window(vpns) in ("ripple", "ladder")

    def test_irregular(self):
        vpns = [0, 97, 13, 55, 200, 7, 151, 42, 99, 3, 77, 164, 31, 88, 120, 5]
        assert classify_window(vpns) == "irregular"

    def test_short_window_irregular(self):
        assert classify_window([1, 2]) == "irregular"


class TestAnalyzeTrace:
    def test_clusters_interleaved_streams(self):
        # Two far-apart streams interleaved: both classified simple.
        vpns = []
        for i in range(64):
            vpns.append(1000 + i)
            vpns.append(90_000 + 2 * i)
        breakdown = analyze_trace(vpns, window=16)
        assert breakdown.fraction("simple") == 1.0

    def test_fractions_sum_to_one(self):
        import random
        rng = random.Random(1)
        vpns = [rng.randrange(10_000) for _ in range(500)]
        breakdown = analyze_trace(vpns)
        if breakdown.total:
            assert sum(breakdown.as_dict().values()) == pytest.approx(1.0)

    def test_empty_trace(self):
        breakdown = analyze_trace([])
        assert breakdown.total == 0
        assert breakdown.fraction("simple") == 0.0


class TestPageSequence:
    def test_collapses_consecutive_blocks(self):
        trace = [(1, (5 << 12) | (b << 6)) for b in range(8)]
        trace += [(1, (6 << 12))]
        assert page_sequence(trace) == [5, 6]

    def test_revisits_kept(self):
        trace = [(1, 5 << 12), (1, 6 << 12), (1, 5 << 12)]
        assert page_sequence(trace) == [5, 6, 5]


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", 2]],
            precision=2,
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "1.23" in lines[2]
        assert "2" in lines[3]

    def test_render_table_title(self):
        text = render_table(["x"], [[1]], title="Table II")
        assert text.splitlines()[0] == "Table II"

    def test_render_series(self):
        text = render_series("hopp", {"acc": 0.95, "cov": 0.9}, precision=2)
        assert text == "hopp: acc=0.95 cov=0.90"
