"""Tests for the Section IV huge-page batch prefetching extension."""

import pytest

from repro.hopp.hugepage import HugePageBatcher
from repro.kernel.page_table import PteState
from repro.sim.machine import Machine, MachineConfig
from tests.conftest import quiet_fabric, touch_pages


class RecordingBatchBackend:
    def __init__(self, respond=True):
        self.respond = respond
        self.batches = []

    def prefetch_batch(self, pid, start_vpn, npages, now_us, inject_pte, tier):
        self.batches.append((pid, start_vpn, npages, inject_pte, tier))
        return now_us + 100.0 if self.respond else None


class TestHugePageBatcher:
    def feed_stream(self, batcher, count, start=0, stride=1, stream_id=0):
        absorbed = []
        vpn = start
        for i in range(count):
            absorbed.append(batcher.observe(stream_id, 1, vpn, stride, float(i)))
            vpn += stride
        return absorbed

    def test_no_batching_before_stream_len(self):
        backend = RecordingBatchBackend()
        batcher = HugePageBatcher(backend, stream_len=50, batch_pages=64)
        absorbed = self.feed_stream(batcher, 49)
        assert not any(absorbed)
        assert backend.batches == []

    def test_batches_after_graduation(self):
        backend = RecordingBatchBackend()
        batcher = HugePageBatcher(backend, stream_len=10, batch_pages=64)
        absorbed = self.feed_stream(batcher, 20, start=1000)
        assert any(absorbed)
        assert backend.batches
        # Batch starts are region-aligned.
        for _, start, npages, inject, tier in backend.batches:
            assert start % 64 == 0
            assert npages == 64
            assert inject is True
            assert tier == "huge"

    def test_one_attempt_per_region(self):
        backend = RecordingBatchBackend()
        batcher = HugePageBatcher(backend, stream_len=4, batch_pages=64)
        self.feed_stream(batcher, 60, start=0)
        # Regions entered: 0 (graduation at vpn ~4); attempts cover
        # region 0 (step 0) and region 1 (step 1) exactly once.
        starts = [start for _, start, _, _, _ in backend.batches]
        assert len(starts) == len(set(starts))

    def test_failed_batches_not_absorbed(self):
        backend = RecordingBatchBackend(respond=False)
        batcher = HugePageBatcher(backend, stream_len=4, batch_pages=64)
        absorbed = self.feed_stream(batcher, 30)
        # Nothing was fetchable: the single-page path must stay active.
        assert not any(absorbed)
        assert batcher.batches_issued == 0

    def test_non_unit_stride_resets(self):
        backend = RecordingBatchBackend()
        batcher = HugePageBatcher(backend, stream_len=8, batch_pages=64)
        for i in range(6):
            batcher.observe(0, 1, i, 1, 0.0)
        batcher.observe(0, 1, 100, 8, 0.0)  # big jump, stride 8
        assert batcher._progress[0].consecutive_unit == 0

    def test_descending_stream_batches_backward(self):
        backend = RecordingBatchBackend()
        batcher = HugePageBatcher(backend, stream_len=4, batch_pages=64)
        self.feed_stream(batcher, 20, start=1000, stride=-1)
        assert backend.batches
        # Region ahead of a descending stream is below the current one.
        current_region = (1000 // 64) * 64
        starts = {start for _, start, _, _, _ in backend.batches}
        assert any(start < current_region for start in starts)

    def test_negative_regions_skipped(self):
        backend = RecordingBatchBackend()
        batcher = HugePageBatcher(backend, stream_len=2, batch_pages=64)
        self.feed_stream(batcher, 10, start=10, stride=-1)
        assert all(start >= 0 for _, start, _, _, _ in backend.batches)

    def test_validation(self):
        with pytest.raises(ValueError):
            HugePageBatcher(RecordingBatchBackend(), stream_len=0)
        with pytest.raises(ValueError):
            HugePageBatcher(RecordingBatchBackend(), batch_pages=0)

    def test_forget_stream(self):
        backend = RecordingBatchBackend()
        batcher = HugePageBatcher(backend, stream_len=4)
        self.feed_stream(batcher, 6)
        batcher.forget_stream(0)
        assert 0 not in batcher._progress


class TestMachineBatchPrefetch:
    def make(self, limit=64):
        machine = Machine(
            MachineConfig(local_memory_pages=limit, fabric=quiet_fabric(),
                          watermark_slack=4)
        )
        machine.register_process(1)
        return machine

    def test_batch_fetches_only_remote_pages(self):
        machine = self.make(limit=8)
        touch_pages(machine, 1, range(16))  # 0..7 remote now
        arrival = machine.prefetch_batch(1, 0, 8, machine.now_us, True, "huge")
        assert arrival is not None
        assert machine.issued_by_tier["huge"] > 0
        # Untouched pages beyond the footprint are not fetched.
        before = machine.prefetch_issued
        assert machine.prefetch_batch(1, 1000, 8, machine.now_us, True, "huge") is None
        assert machine.prefetch_issued == before

    def test_batch_pages_injected_on_arrival(self):
        machine = self.make(limit=8)
        touch_pages(machine, 1, range(16))
        arrival = machine.prefetch_batch(1, 0, 4, machine.now_us, True, "huge")
        machine.now_us = arrival + 1.0
        machine.access(1, 200 << 12)  # drain arrivals
        remote_left = [
            vpn for vpn in range(4)
            if machine.page_state(1, vpn) == PteState.REMOTE
        ]
        assert remote_left == []

    def test_batch_arrivals_progressive(self):
        machine = self.make(limit=8)
        touch_pages(machine, 1, range(16))
        machine.prefetch_batch(1, 0, 4, machine.now_us, True, "huge")
        arrivals = sorted(a for a, _, _, _ in machine._arrivals)
        assert arrivals == sorted(set(arrivals))  # strictly increasing
        # Pages stream at link rate after one propagation delay.
        gap = arrivals[1] - arrivals[0]
        assert gap == pytest.approx(machine.fabric.page_service_us)

    def test_single_fabric_request_counts_pages(self):
        machine = self.make(limit=8)
        touch_pages(machine, 1, range(16))
        reads_before = machine.fabric.reads
        machine.prefetch_batch(1, 0, 8, machine.now_us, True, "huge")
        fetched = machine.fabric.reads - reads_before
        assert fetched > 0

    def test_unknown_pid_rejected(self):
        machine = self.make()
        assert machine.prefetch_batch(99, 0, 8, 0.0, True, "huge") is None


class TestHoppHugeSystem:
    def test_hopp_huge_graduates_on_long_stream(self):
        import repro
        from tests.conftest import quiet_fabric

        wl = repro.workloads.build("stream-simple", npages=1500, passes=2)
        result = repro.run(wl, "hopp-huge", 0.75, quiet_fabric())
        assert result.issued_by_tier.get("huge", 0) > 0
        # Batch requests replace most single-page SSP requests.
        assert result.issued_by_tier.get("huge", 0) > result.issued_by_tier.get("ssp", 0)

    def test_hopp_huge_matches_hopp_with_headroom(self):
        import repro
        from tests.conftest import quiet_fabric

        wl = repro.workloads.build("stream-simple", npages=3000, passes=2)
        hopp = repro.run(wl, "hopp", 0.75, quiet_fabric())
        huge = repro.run(wl, "hopp-huge", 0.75, quiet_fabric())
        assert huge.completion_time_us <= hopp.completion_time_us * 1.05
        assert huge.prefetch_wasted <= hopp.prefetch_wasted + 32
