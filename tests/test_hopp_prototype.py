"""Tests for the Section V prototype emulation (software HPD)."""

import pytest

from repro.common.types import RptEntry
from repro.hopp.prototype import PrototypeDataPlane
from repro.hopp.system import HoppConfig, HoppDataPlane


class RecordingBackend:
    def __init__(self):
        self.requests = []

    def prefetch_page(self, pid, vpn, now_us, inject_pte, tier):
        self.requests.append((pid, vpn, tier))
        return now_us + 4.0


def seed_rpt(plane, npages=200, base_vpn=1000):
    for ppn in range(npages):
        plane.rpt.write(ppn, RptEntry(pid=1, vpn=base_vpn + ppn))


def stream_accesses(plane, npages, start_us=0.0, us_per_access=1.0):
    t = start_us
    for ppn in range(npages):
        for block in range(8):
            plane.on_mc_access(t, (ppn << 12) | (block << 6), False)
            t += us_per_access
    return t


class TestPrototypeDataPlane:
    def test_fast_consumer_matches_design(self):
        design_backend, proto_backend = RecordingBackend(), RecordingBackend()
        design = HoppDataPlane(design_backend, HoppConfig(stt_history_len=8))
        prototype = PrototypeDataPlane(
            proto_backend, HoppConfig(stt_history_len=8),
            consume_rate_per_us=1000.0,
        )
        for plane in (design, prototype):
            seed_rpt(plane)
        stream_accesses(design, 100)
        stream_accesses(prototype, 100)
        assert [r[1] for r in proto_backend.requests] == [
            r[1] for r in design_backend.requests
        ]
        assert prototype.records_dropped == 0

    def test_starved_consumer_drops_trace(self):
        backend = RecordingBackend()
        prototype = PrototypeDataPlane(
            backend, HoppConfig(stt_history_len=8),
            consume_rate_per_us=0.01, ring_capacity=64,
        )
        seed_rpt(prototype)
        stream_accesses(prototype, 100, us_per_access=1.0)
        assert prototype.records_dropped > 0
        assert prototype.drop_rate > 0.5
        assert prototype.records_consumed < prototype.records_enqueued

    def test_backlog_builds_when_behind(self):
        prototype = PrototypeDataPlane(
            RecordingBackend(), HoppConfig(), consume_rate_per_us=0.5,
            ring_capacity=1 << 16,
        )
        seed_rpt(prototype)
        stream_accesses(prototype, 50, us_per_access=0.1)
        assert prototype.backlog > 0

    def test_consumption_budget_accumulates_with_time(self):
        prototype = PrototypeDataPlane(
            RecordingBackend(), HoppConfig(), consume_rate_per_us=1.0,
        )
        seed_rpt(prototype)
        # Burst at t=0: mostly queued.
        for block in range(8):
            prototype.on_mc_access(0.0, block << 6, False)
        backlog_before = prototype.backlog
        # A later access gives the consumer time to catch up.
        prototype.on_mc_access(100.0, (1 << 12), False)
        assert prototype.backlog < backlog_before

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PrototypeDataPlane(RecordingBackend(), consume_rate_per_us=0.0)

    def test_counters_conserve(self):
        prototype = PrototypeDataPlane(
            RecordingBackend(), HoppConfig(), consume_rate_per_us=2.0,
            ring_capacity=32,
        )
        seed_rpt(prototype)
        stream_accesses(prototype, 60, us_per_access=0.2)
        assert (
            prototype.records_consumed
            + prototype.records_dropped
            + prototype.backlog
            == prototype.records_enqueued
        )
