"""Cluster suite: multi-node remote pool, placement, and failover.

Proves the properties the rack-scale subsystem must hold:

* **single-node equivalence** — a 1-node ``interleave`` cluster is
  byte-identical to the pre-cluster single-node path (golden metrics
  captured from the tree at commit ``026aa07``, before the cluster
  existed), for HoPP and two baselines, clean and under chaos;
* **placement** — interleave balances, hash is stable across
  re-evictions, affinity co-locates with spill;
* **failover** — a restarting node's demand reads fail over to a
  replica, writebacks re-route to a live node, prefetches drop;
* **conservation** — slot accounting balances on every node even while
  copies are re-routed and failed over mid-run.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    PlacementPolicy,
    RemoteMemoryCluster,
    SlotDirectoryError,
    build_placement,
    placement_names,
    register_placement,
)
from repro.net.faults import FaultPlan, RemoteUnavailableError
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.sim.machine import Machine, MachineConfig
from repro.workloads import build
from tests.conftest import quiet_fabric, touch_pages


def _cluster(nodes=3, placement="interleave", replication=1, plan=None,
             capacity=1024):
    return RemoteMemoryCluster(
        ClusterConfig(nodes=nodes, placement=placement,
                      replication=replication),
        capacity,
        quiet_fabric(),
        fault_plan=plan,
    )


def _machine(nodes=1, placement="interleave", replication=1, plan=None,
             local_pages=16):
    machine = Machine(
        MachineConfig(
            local_memory_pages=local_pages,
            fabric=quiet_fabric(),
            watermark_slack=4,
            fault_plan=plan,
            cluster=ClusterConfig(
                nodes=nodes, placement=placement, replication=replication
            ),
        )
    )
    machine.register_process(1)
    machine.add_vma(1, 0, 4096, "test")
    return machine


class TestClusterConfigValidation:
    def test_defaults_are_single_node(self):
        config = ClusterConfig()
        assert config.nodes == 1
        assert config.placement == "interleave"
        assert config.replication == 1

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)

    def test_replication_beyond_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, replication=3)
        with pytest.raises(ValueError):
            ClusterConfig(replication=0)

    def test_unknown_placement_rejected(self):
        with pytest.raises(KeyError):
            ClusterConfig(placement="bogus")

    def test_bad_per_node_capacity_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(capacity_pages_per_node=0)


class TestPlacementPolicies:
    def test_known_names(self):
        assert placement_names() == ["affinity", "hash", "interleave", "tiered"]

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="interleave"):
            build_placement("bogus")

    def test_unknown_name_error_is_typed_and_lists_names(self):
        from repro.cluster.placement import UnknownPlacementError

        with pytest.raises(UnknownPlacementError) as excinfo:
            build_placement("bogus")
        assert excinfo.value.name == "bogus"
        assert excinfo.value.known == ("affinity", "hash", "interleave", "tiered")
        message = str(excinfo.value)
        for name in ("affinity", "hash", "interleave", "tiered"):
            assert name in message

    def test_duplicate_registration_raises_typed_error(self):
        from repro.cluster.placement import DuplicatePlacementError

        class ShadowInterleave(PlacementPolicy):
            name = "interleave"

            def place(self, pid, vpn, slot, cluster):  # pragma: no cover
                return 0

        with pytest.raises(DuplicatePlacementError) as excinfo:
            register_placement(ShadowInterleave)
        assert excinfo.value.name == "interleave"
        assert "tiered" in str(excinfo.value)
        # The registry is untouched by the failed registration.
        assert placement_names() == ["affinity", "hash", "interleave", "tiered"]

    def test_interleave_round_robin_in_slot_order(self):
        cluster = _cluster(nodes=3)
        nodes = [
            cluster.placement.place(1, vpn, slot, cluster)
            for slot, vpn in enumerate(range(100, 106))
        ]
        assert nodes == [0, 1, 2, 0, 1, 2]

    def test_hash_is_slot_independent(self):
        """A page keeps its node when re-evicted into a fresh slot."""
        cluster = _cluster(nodes=4, placement="hash")
        first = cluster.placement.place(7, 1234, 10, cluster)
        again = cluster.placement.place(7, 1234, 999, cluster)
        assert first == again

    def test_hash_spreads_across_nodes(self):
        cluster = _cluster(nodes=4, placement="hash")
        used = {
            cluster.placement.place(1, vpn, 0, cluster) for vpn in range(64)
        }
        assert used == {0, 1, 2, 3}

    def test_affinity_co_locates_a_pid(self):
        cluster = _cluster(nodes=3, placement="affinity")
        nodes = {
            cluster.placement.place(1, vpn, slot, cluster)
            for slot, vpn in enumerate(range(50))
        }
        assert len(nodes) == 1

    def test_affinity_separates_pids_by_load(self):
        cluster = _cluster(nodes=3, placement="affinity")
        home_a = cluster.placement.place(1, 0, 0, cluster)
        cluster.nodes[home_a].remote.write(0, 1, 0)
        home_b = cluster.placement.place(2, 0, 1, cluster)
        assert home_b != home_a

    def test_affinity_spills_when_home_is_full(self):
        cluster = _cluster(nodes=2, placement="affinity", capacity=4)
        home = cluster.placement.place(1, 0, 0, cluster)
        for slot in range(2):  # capacity_pages_per_node == 2
            cluster.nodes[home].remote.write(slot, 1, slot)
        spill = cluster.placement.place(1, 99, 2, cluster)
        assert spill == (home + 1) % 2

    def test_register_custom_placement(self):
        class PinToLast(PlacementPolicy):
            name = "pin-to-last"

            def place(self, pid, vpn, slot, cluster):
                return cluster.node_count - 1

        register_placement(PinToLast)
        try:
            cluster = _cluster(nodes=3, placement="pin-to-last")
            assert cluster.placement.place(1, 0, 0, cluster) == 2
        finally:
            from repro.cluster.placement import _PLACEMENTS

            _PLACEMENTS.pop("pin-to-last")


class TestSlotDirectory:
    def test_assign_records_primary_and_ring_replicas(self):
        cluster = _cluster(nodes=4, replication=3)
        targets = cluster.assign(5, 1, 100)  # interleave: 5 % 4 == 1
        assert [node.node_id for node in targets] == [1, 2, 3]
        assert cluster.holders_of(5) == (1, 2, 3)
        assert cluster.primary_node(5).node_id == 1

    def test_read_candidates_raise_for_unknown_slot(self):
        # The pre-self-healing silent node-0 fallback masked directory
        # corruption; an unplaced slot is now a typed, counted error.
        cluster = _cluster(nodes=3)
        with pytest.raises(SlotDirectoryError):
            cluster.read_candidates(99)
        with pytest.raises(SlotDirectoryError):
            cluster.primary_node(99)
        assert cluster.directory_misses == 2

    def test_slot_directory_error_is_a_key_error(self):
        # Callers that caught KeyError before the typed error keep working.
        assert issubclass(SlotDirectoryError, KeyError)

    def test_release_drops_every_replica(self):
        cluster = _cluster(nodes=3, replication=2)
        for node in cluster.assign(0, 1, 100):
            node.remote.write(0, 1, 100)
        assert cluster.pages_stored == 2
        cluster.release(0)
        assert cluster.pages_stored == 0
        assert cluster.holders_of(0) == ()
        assert cluster.conserved()

    def test_reroute_picks_next_non_holder_and_updates_directory(self):
        cluster = _cluster(nodes=3, replication=2)
        cluster.assign(0, 1, 100)  # holders [0, 1]
        rerouted = cluster.reroute(0, 0)
        assert rerouted.node_id == 2
        assert cluster.holders_of(0) == (2, 1)
        assert cluster.writeback_reroutes == 1

    def test_reroute_with_nowhere_to_go_stays_put(self):
        cluster = _cluster(nodes=2, replication=2)
        cluster.assign(0, 1, 100)  # holders [0, 1]: every node taken
        assert cluster.reroute(0, 0).node_id == 0
        assert cluster.writeback_reroutes == 0

    def test_capacity_split_across_nodes(self):
        cluster = _cluster(nodes=4, capacity=1000)
        assert all(
            node.remote.capacity_pages == 250 for node in cluster.nodes
        )

    def test_per_node_fault_plans_partition_windows(self):
        plan = FaultPlan(
            seed=3,
            remote_restart=((0.0, 10.0), (20.0, 30.0), (40.0, 50.0)),
        )
        cluster = _cluster(nodes=2, plan=plan)
        assert [len(n.injector.plan.remote_restart) for n in cluster.nodes] \
            == [2, 1]
        assert [n.injector.plan.seed for n in cluster.nodes] == [3, 4]
        # Node 0 owns windows 0 and 2; node 1 owns window 1.
        with pytest.raises(RemoteUnavailableError):
            cluster.nodes[0].injector.check_remote(5.0)
        cluster.nodes[1].injector.check_remote(5.0)
        with pytest.raises(RemoteUnavailableError):
            cluster.nodes[1].injector.check_remote(25.0)

    def test_stats_snapshot_shape(self):
        cluster = _cluster(nodes=2, replication=2)
        snapshot = cluster.stats_snapshot()
        assert snapshot["nodes"] == 2
        assert snapshot["placement"] == "interleave"
        assert snapshot["replication"] == 2
        assert len(snapshot["per_node"]) == 2
        assert snapshot["per_node"][0]["fabric"]["reads"] == 0
        assert snapshot["per_node"][1]["remote"]["pages_stored"] == 0


#: Golden metrics captured from the pre-cluster tree (commit 026aa07)
#: with FabricConfig(seed=1), stream-simple(npages=200, passes=2) @50%.
_GOLDEN = {
    "hopp": {
        "completion_time_us": 1851.294488643414,
        "fabric_reads": 200, "fabric_writes": 306, "minor_faults": 200,
        "remote_demand_reads": 14, "prefetch_issued": 186,
        "prefetch_hit_dram": 149, "prefetch_hit_inflight": 15,
        "prefetch_hit_swapcache": 22, "reclaim_pages": 306,
        "peak_resident_pages": 100,
    },
    "fastswap": {
        "completion_time_us": 2379.6209481468804,
        "fabric_reads": 200, "fabric_writes": 306, "minor_faults": 200,
        "remote_demand_reads": 40, "prefetch_issued": 160,
        "prefetch_hit_dram": 0, "prefetch_hit_inflight": 21,
        "prefetch_hit_swapcache": 139, "reclaim_pages": 306,
        "peak_resident_pages": 100,
    },
    "leap": {
        "completion_time_us": 2294.358149873565,
        "fabric_reads": 170, "fabric_writes": 272, "minor_faults": 200,
        "remote_demand_reads": 47, "prefetch_issued": 123,
        "prefetch_hit_dram": 0, "prefetch_hit_inflight": 7,
        "prefetch_hit_swapcache": 116, "reclaim_pages": 272,
        "peak_resident_pages": 100,
    },
}
_GOLDEN_CHAOS = {
    "completion_time_us": 2227.6921394747765,
    "timeouts": 18, "retries": 8, "dropped_prefetches": 10,
    "fabric_reads": 211, "fabric_writes": 313,
}


class TestSingleNodeEquivalence:
    """The invariant that makes the cluster refactor safe: one node +
    interleave + no replication == the pre-cluster single-node path,
    byte for byte."""

    @pytest.mark.parametrize("system", sorted(_GOLDEN))
    @pytest.mark.parametrize("explicit_cluster", [False, True])
    def test_clean_run_matches_pre_cluster_golden(
        self, system, explicit_cluster
    ):
        workload = build("stream-simple", npages=200, passes=2)
        cluster = (
            ClusterConfig(nodes=1, placement="interleave", replication=1)
            if explicit_cluster
            else None
        )
        result = runner.run(
            workload, system, 0.5, FabricConfig(seed=1), cluster=cluster
        )
        snapshot = result.to_dict()
        for key, value in _GOLDEN[system].items():
            assert snapshot[key] == value, (system, key)
        assert result.remote_nodes == 1
        assert result.demand_failovers == 0
        assert result.writeback_reroutes == 0

    def test_chaos_run_matches_pre_cluster_golden(self):
        workload = build("stream-simple", npages=200, passes=2)
        result = runner.run(
            workload, "hopp", 0.5, FabricConfig(seed=1), FaultPlan.chaos(1)
        )
        snapshot = result.to_dict()
        for key, value in _GOLDEN_CHAOS.items():
            assert snapshot[key] == value, key

    def test_machine_aliases_point_at_node_zero(self):
        machine = _machine(nodes=1)
        assert machine.fabric is machine.cluster.nodes[0].fabric
        assert machine.remote is machine.cluster.nodes[0].remote


class TestMultiNodeRuns:
    def test_every_link_carries_traffic(self):
        machine = _machine(nodes=3, local_pages=16)
        touch_pages(machine, 1, range(64))
        touch_pages(machine, 1, range(64))
        writes = [node.fabric.writes for node in machine.cluster.nodes]
        reads = [node.fabric.reads for node in machine.cluster.nodes]
        assert all(w > 0 for w in writes)
        assert sum(reads) > 0
        assert machine.cluster.fabric_writes == sum(writes)

    def test_affinity_keeps_one_process_on_one_node(self):
        machine = _machine(nodes=3, placement="affinity", local_pages=16)
        touch_pages(machine, 1, range(64))
        stored = [node.remote.pages_stored for node in machine.cluster.nodes]
        assert sorted(stored)[:2] == [0, 0]

    def test_replication_writes_every_copy(self):
        machine = _machine(nodes=3, replication=2, local_pages=16)
        touch_pages(machine, 1, range(32))
        # Every remote page exists on exactly two nodes.
        table = machine.page_table(1)
        for vpn in range(32):
            pte = table.peek(vpn)
            if pte is None or pte.swap_slot is None or pte.swap_slot < 0:
                continue
            holders = machine.cluster.holders_of(pte.swap_slot)
            assert len(holders) == 2
            for node_id in holders:
                assert machine.cluster.nodes[node_id].remote.holds(
                    pte.swap_slot
                )

    def test_results_deterministic_across_identical_runs(self):
        def one():
            workload = build("stream-simple", npages=150, passes=2)
            return runner.run(
                workload, "hopp", 0.5, FabricConfig(seed=3),
                cluster=ClusterConfig(nodes=3, placement="hash",
                                      replication=2),
            )

        assert one().to_dict() == one().to_dict()


class TestFailover:
    """Remote-restart windows land on one node at a time; the cluster
    must keep serving through them."""

    def _restart_plan(self, start=1_000_000.0, end=2_000_000.0):
        # One window -> node 0 of any multi-node cluster.
        return FaultPlan(seed=11, remote_restart=((start, end),))

    def test_demand_read_fails_over_to_replica(self):
        machine = _machine(
            nodes=3, replication=2, plan=self._restart_plan(), local_pages=8
        )
        touch_pages(machine, 1, range(32))
        table = machine.page_table(1)
        victim = next(
            vpn for vpn in range(32)
            if table.peek(vpn) is not None
            and table.peek(vpn).swap_slot is not None
            and table.peek(vpn).swap_slot >= 0
            and machine.cluster.holders_of(table.peek(vpn).swap_slot)[0] == 0
        )
        machine.now_us = 1_500_000.0  # inside node 0's restart window
        replica_reads_before = machine.cluster.nodes[1].remote.pages_read
        touch_pages(machine, 1, [victim])
        assert machine.cluster.demand_failovers == 1
        assert machine.remote_demand_reads >= 1
        # The replica (ring successor of node 0) answered the read.
        assert (
            machine.cluster.nodes[1].remote.pages_read
            == replica_reads_before + 1
        )

    def test_demand_read_without_replica_retries_in_place(self):
        """replication=1 keeps the PR-1 behaviour: backoff until the
        restart window passes."""
        machine = _machine(
            nodes=3, replication=1,
            plan=self._restart_plan(1_000_000.0, 1_000_100.0), local_pages=8,
        )
        touch_pages(machine, 1, range(32))
        table = machine.page_table(1)
        victim = next(
            vpn for vpn in range(32)
            if table.peek(vpn) is not None
            and table.peek(vpn).swap_slot is not None
            and table.peek(vpn).swap_slot >= 0
            and machine.cluster.holders_of(table.peek(vpn).swap_slot)[0] == 0
        )
        machine.now_us = 1_000_000.0
        touch_pages(machine, 1, [victim])
        assert machine.cluster.demand_failovers == 0
        assert machine.retries >= 1

    def test_writeback_reroutes_to_live_node(self):
        machine = _machine(
            nodes=3, replication=1,
            plan=self._restart_plan(0.0, 1e12), local_pages=8,
        )
        touch_pages(machine, 1, range(32))  # evicts through node 0's outage
        assert machine.cluster.writeback_reroutes > 0
        # Nothing landed on the dead node.
        assert machine.cluster.nodes[0].remote.pages_written == 0
        assert machine.cluster.conserved()

    def test_conservation_across_failover_and_rerouting(self):
        """The slot-conservation invariant (satellite): every node's
        ``pages_written == pages_stored + pages_overwritten +
        pages_released`` even while copies re-route mid-run."""
        plan = FaultPlan(
            seed=5,
            timeout_probability=0.05,
            remote_restart=((2_000.0, 2_600.0), (5_000.0, 5_600.0),
                            (8_000.0, 8_600.0)),
        )
        workload = build("stream-simple", npages=300, passes=3)
        machine = runner.make_machine(
            workload, "hopp", 0.4, FabricConfig(seed=2), plan,
            ClusterConfig(nodes=3, placement="hash", replication=2),
        )
        machine.run(workload.trace())
        for node in machine.cluster.nodes:
            assert node.remote.conserved, node
        assert machine.cluster.conserved()
        assert machine.cluster.writeback_reroutes > 0

    def test_three_node_chaos_acceptance(self):
        """Acceptance criterion: a 3-node chaos run completes with
        conserved accounting and nonzero failover counters.  The chaos
        preset's restart window sits at 70 ms, so the workload must run
        past it (kv-cache does, at ~100 ms simulated)."""
        workload = build("kv-cache", seed=1)
        result = runner.run(
            workload, "hopp", 0.5, FabricConfig(seed=1), FaultPlan.chaos(1),
            ClusterConfig(nodes=3, placement="interleave", replication=2),
        )
        assert result.timeouts > 0
        assert result.demand_failovers > 0
        assert result.writeback_reroutes > 0
        for stats in result.node_stats:
            remote = stats["remote"]
            assert remote["pages_written"] == (
                remote["pages_stored"]
                + remote["pages_overwritten"]
                + remote["pages_released"]
            )


class TestRunResultClusterMetrics:
    def test_to_dict_carries_cluster_section(self):
        workload = build("stream-simple", npages=100, passes=1)
        result = runner.run(
            workload, "fastswap", 0.5, FabricConfig(seed=1),
            cluster=ClusterConfig(nodes=2, placement="hash"),
        )
        section = result.to_dict()["cluster"]
        assert section["remote_nodes"] == 2
        assert section["placement"] == "hash"
        assert section["replication"] == 1
        assert len(section["per_node"]) == 2
        total_reads = sum(
            stats["fabric"]["reads"] for stats in section["per_node"]
        )
        assert total_reads == result.fabric_reads
