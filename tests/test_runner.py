"""Tests for the runner, system registry, metrics, and multiprogram."""

import pytest

from repro.sim import runner, systems
from repro.sim.metrics import RunResult
from repro.sim.multiprogram import run_corun
from repro.workloads import build
from tests.conftest import quiet_fabric


def small_stream(**kwargs):
    return build("stream-simple", npages=200, passes=2, **kwargs)


class TestSystemsRegistry:
    def test_known_names(self):
        listed = systems.names()
        for expected in ("hopp", "fastswap", "leap", "depth-16", "depth-32",
                         "vma-readahead", "noprefetch", "majority-full"):
            assert expected in listed

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown system"):
            systems.build("bogus")

    def test_hopp_machine_has_data_plane(self):
        machine = runner.make_machine(small_stream(), "hopp", 0.5, quiet_fabric())
        assert machine.hopp is not None
        assert machine.fault_prefetcher.name == "fastswap"

    def test_fastswap_machine_has_no_plane_and_no_charging(self):
        machine = runner.make_machine(small_stream(), "fastswap", 0.5, quiet_fabric())
        assert machine.hopp is None
        assert machine.config.charge_prefetch is False

    def test_hopp_offset_variants(self):
        machine = runner.make_machine(small_stream(), "hopp-offset-20k", 0.5)
        assert machine.hopp.policy.config.adaptive is False
        assert machine.hopp.policy.config.initial_offset == 20_000.0

    def test_hopp_tier_variants(self):
        machine = runner.make_machine(small_stream(), "hopp-ssp", 0.5)
        tiers = machine.hopp.trainer.config
        assert tiers.enable_ssp and not tiers.enable_lsp and not tiers.enable_rsp

    def test_majority_full_is_swapcache_ssp(self):
        machine = runner.make_machine(small_stream(), "majority-full", 0.5)
        assert machine.hopp.config.inject_pte is False
        assert not machine.hopp.trainer.config.enable_lsp


class TestRunner:
    def test_run_returns_populated_result(self):
        result = runner.run(small_stream(), "fastswap", 0.5, quiet_fabric())
        assert isinstance(result, RunResult)
        assert result.system == "fastswap"
        assert result.workload == "stream-simple"
        assert result.completion_time_us > 0
        assert result.accesses == 200 * 2 * 8

    def test_deterministic_across_runs(self):
        a = runner.run(small_stream(seed=5), "hopp", 0.5, quiet_fabric())
        b = runner.run(small_stream(seed=5), "hopp", 0.5, quiet_fabric())
        assert a.completion_time_us == b.completion_time_us
        assert a.prefetch_issued == b.prefetch_issued
        assert a.remote_demand_reads == b.remote_demand_reads

    def test_local_fraction_means_no_remote(self):
        result = runner.run(small_stream(), "noprefetch", runner.LOCAL_FRACTION)
        assert result.remote_demand_reads == 0
        assert result.fabric_reads == 0

    def test_local_completion_time_is_lower_bound(self):
        wl = small_stream()
        ct_local = runner.local_completion_time(wl, quiet_fabric())
        remote = runner.run(wl, "fastswap", 0.3, quiet_fabric())
        assert 0 < ct_local < remote.completion_time_us

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            runner.run(small_stream(), "fastswap", 0.0)

    def test_hopp_extra_stats_populated(self):
        result = runner.run(small_stream(), "hopp", 0.5, quiet_fabric())
        assert "hpd_hot_page_ratio" in result.extra
        assert "rpt_cache_hit_rate" in result.extra
        assert 0 < result.extra["rpt_cache_hit_rate"] <= 1.0

    def test_compare_shares_baseline(self):
        comparison = runner.compare(
            small_stream(), ["fastswap", "hopp"], 0.5, quiet_fabric()
        )
        assert set(comparison.results) == {"fastswap", "hopp"}
        np_fast = comparison.normalized_performance("fastswap")
        np_hopp = comparison.normalized_performance("hopp")
        assert 0 < np_fast < 1
        assert np_hopp > np_fast
        assert comparison.speedup("hopp") > 0


class TestMetrics:
    def test_accuracy_coverage_bounds(self):
        result = runner.run(small_stream(), "hopp", 0.5, quiet_fabric())
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.0 <= result.coverage <= 1.0
        assert result.dram_hit_coverage <= result.coverage

    def test_prefetch_hits_sum(self):
        result = runner.run(small_stream(), "hopp", 0.5, quiet_fabric())
        assert result.prefetch_hits == (
            result.prefetch_hit_swapcache
            + result.prefetch_hit_inflight
            + result.prefetch_hit_dram
        )

    def test_speedup_vs_self_is_zero(self):
        result = runner.run(small_stream(), "fastswap", 0.5, quiet_fabric())
        assert result.speedup_vs(result) == pytest.approx(0.0)

    def test_tier_metrics(self):
        result = runner.run(small_stream(), "hopp", 0.5, quiet_fabric())
        assert result.tier_accuracy("ssp") > 0.5
        assert 0 <= result.tier_coverage("ssp") <= 1.0
        assert result.tier_coverage("nonexistent") == 0.0

    def test_remote_accesses_counts_all_fabric_reads(self):
        result = runner.run(small_stream(), "depth-16", 0.5, quiet_fabric())
        assert result.remote_accesses >= result.remote_demand_reads


class TestMultiprogram:
    def test_corun_two_apps(self):
        apps = [small_stream(seed=1), small_stream(seed=2)]
        result = run_corun(apps, "fastswap", 0.5, quiet_fabric())
        assert result.workload == "stream-simple+stream-simple"
        assert result.accesses == sum(200 * 2 * 8 for _ in apps)

    def test_corun_cgroup_isolation(self):
        from repro.sim import systems as sysmod

        apps = [small_stream(seed=1), small_stream(seed=2)]
        spec = sysmod.build("fastswap")
        # Build manually to introspect the machine.
        from repro.sim.multiprogram import run_corun as rc
        result = rc(apps, spec, 0.4, quiet_fabric())
        assert result.remote_demand_reads > 0  # both thrash their cgroups

    def test_corun_hopp_separates_by_pid(self):
        apps = [small_stream(seed=1), small_stream(seed=2)]
        hopp = run_corun(apps, "hopp", 0.5, quiet_fabric(), seed=3)
        fast = run_corun(apps, "fastswap", 0.5, quiet_fabric(), seed=3)
        assert hopp.completion_time_us < fast.completion_time_us
        assert hopp.accuracy > 0.9

    def test_empty_corun_rejected(self):
        with pytest.raises(ValueError):
            run_corun([], "fastswap")
