"""Tests for binary HMTT trace persistence."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import TraceRecord
from repro.trace.persist import (
    RECORD_BYTES,
    TraceFormatError,
    load_trace,
    read_trace,
    write_trace,
)

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        seq=st.integers(0, 255),
        timestamp=st.integers(0, 255),
        is_write=st.booleans(),
        paddr=st.integers(0, (1 << 40) - 1),
    ),
    max_size=200,
)


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.hmtt"
        records = [
            TraceRecord(seq=i, timestamp=i * 2 % 256, is_write=i % 3 == 0,
                        paddr=i << 12)
            for i in range(100)
        ]
        written = write_trace(path, records)
        assert written == 100
        assert load_trace(path) == records

    def test_stream_round_trip(self):
        buffer = io.BytesIO()
        records = [TraceRecord(1, 2, True, 0x123456789A)]
        write_trace(buffer, records)
        buffer.seek(0)
        assert load_trace(buffer) == records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.hmtt"
        assert write_trace(path, []) == 0
        assert load_trace(path) == []

    @given(records_strategy)
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, records):
        buffer = io.BytesIO()
        write_trace(buffer, records)
        buffer.seek(0)
        assert load_trace(buffer) == records

    def test_record_size_is_8_bytes(self):
        buffer = io.BytesIO()
        write_trace(buffer, [TraceRecord(0, 0, False, 0)])
        # Header (5 bytes) + one packed record.
        assert len(buffer.getvalue()) == 5 + RECORD_BYTES


class TestErrors:
    def test_bad_header_rejected(self):
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(io.BytesIO(b"NOPE\x01" + b"\x00" * 8))

    def test_truncated_record_rejected(self):
        buffer = io.BytesIO()
        write_trace(buffer, [TraceRecord(0, 0, False, 0)])
        data = buffer.getvalue()[:-3]
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(io.BytesIO(data))

    def test_oversized_paddr_rejected(self):
        with pytest.raises(TraceFormatError, match="40-bit"):
            write_trace(io.BytesIO(), [TraceRecord(0, 0, False, 1 << 40)])


class TestIntegrationWithTracer:
    def test_captured_trace_persists(self, tmp_path):
        from repro.memsim.controller import MemoryController
        from repro.trace.hmtt import HmttTracer

        mc = MemoryController()
        tracer = HmttTracer()
        tracer.attach(mc)
        for i in range(50):
            mc.access(float(i), i << 12, is_write=(i % 7 == 0))
        path = tmp_path / "captured.hmtt"
        write_trace(path, tracer.ring.drain())
        loaded = load_trace(path)
        assert len(loaded) == 50
        assert [r.ppn for r in loaded] == list(range(50))
