"""Tests for the prefetch policy engine (Section III-E)."""

import pytest

from repro.common.types import PrefetchDecision
from repro.hopp.policy import PolicyConfig, PolicyEngine
from tests.conftest import make_observation


def decision(stride=1, base=100, delta=0, tier="ssp"):
    return PrefetchDecision(
        tier=tier, base_vpn=base, per_offset_stride=stride, fixed_delta=delta
    )


def obs(stream_id=0):
    return make_observation(list(range(100, 116)), stream_id=stream_id)


class TestFinalize:
    def test_default_offset_and_intensity(self):
        engine = PolicyEngine()
        requests = engine.finalize(decision(), obs(), now_us=0.0)
        assert len(requests) == 1
        assert requests[0].vpn == 101  # base + 1*stride
        assert requests[0].tier == "ssp"

    def test_intensity_emits_consecutive_offsets(self):
        engine = PolicyEngine(PolicyConfig(intensity=3))
        requests = engine.finalize(decision(stride=2), obs(), 0.0)
        assert [r.vpn for r in requests] == [102, 104, 106]

    def test_negative_targets_dropped(self):
        engine = PolicyEngine(PolicyConfig(intensity=2))
        requests = engine.finalize(decision(stride=-60, base=50), obs(), 0.0)
        assert all(r.vpn >= 0 for r in requests)
        assert len(requests) == 0

    def test_ladder_fixed_delta_applied_once(self):
        engine = PolicyEngine()
        requests = engine.finalize(decision(stride=4, delta=1, tier="lsp"), obs(), 0.0)
        assert requests[0].vpn == 100 + 1 + 4

    def test_offset_rounding(self):
        engine = PolicyEngine()
        engine._offsets[0] = 2.6
        requests = engine.finalize(decision(), obs(stream_id=0), 0.0)
        assert requests[0].vpn == 103  # round(2.6) = 3

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            PolicyEngine(PolicyConfig(intensity=0))


class TestOffsetAdaptation:
    def test_late_page_increases_offset(self):
        engine = PolicyEngine(PolicyConfig(alpha=0.2, t_min_us=40.0))
        engine.report_timeliness(0, t_us=5.0, issued_us=0.0, now_us=10.0)
        assert engine.offset_of(0) == pytest.approx(1.2)
        assert engine.offset_increases == 1

    def test_early_page_decreases_offset(self):
        engine = PolicyEngine(PolicyConfig(alpha=0.2, t_max_us=100.0))
        engine._offsets[0] = 10.0
        engine.report_timeliness(0, t_us=500.0, issued_us=0.0, now_us=1.0)
        assert engine.offset_of(0) == pytest.approx(8.0)
        assert engine.offset_decreases == 1

    def test_in_window_no_change(self):
        engine = PolicyEngine(PolicyConfig(t_min_us=40.0, t_max_us=100.0))
        engine.report_timeliness(0, t_us=60.0, issued_us=0.0, now_us=1.0)
        assert engine.offset_of(0) == 1.0

    def test_offset_bounded(self):
        engine = PolicyEngine(PolicyConfig(alpha=0.5, offset_max=4.0))
        now = 0.0
        for i in range(20):
            # Each report reflects a prefetch issued after the previous
            # adjustment, so the gate always passes.
            engine.report_timeliness(0, t_us=1.0, issued_us=now + 1.0, now_us=now + 1.0)
            now += 1.0
        assert engine.offset_of(0) == 4.0

    def test_offset_floor_is_one(self):
        engine = PolicyEngine(PolicyConfig(alpha=0.9))
        engine._offsets[0] = 1.1
        engine.report_timeliness(0, t_us=1e9, issued_us=0.0, now_us=1.0)
        assert engine.offset_of(0) == 1.0

    def test_non_adaptive_never_changes(self):
        engine = PolicyEngine(PolicyConfig(adaptive=False, initial_offset=7.0))
        engine.report_timeliness(0, t_us=0.0, issued_us=0.0, now_us=1.0)
        assert engine.offset_of(0) == 7.0

    def test_feedback_gate_blocks_stale_reports(self):
        """Reports for prefetches issued before the last adjustment must
        not compound — the control-loop overshoot guard."""
        engine = PolicyEngine(PolicyConfig(alpha=0.2))
        engine.report_timeliness(0, t_us=1.0, issued_us=5.0, now_us=10.0)
        assert engine.offset_of(0) == pytest.approx(1.2)
        # This report reflects a prefetch issued at t=7 < 10: ignored.
        engine.report_timeliness(0, t_us=1.0, issued_us=7.0, now_us=11.0)
        assert engine.offset_of(0) == pytest.approx(1.2)
        # A post-adjustment prefetch counts.
        engine.report_timeliness(0, t_us=1.0, issued_us=12.0, now_us=13.0)
        assert engine.offset_of(0) == pytest.approx(1.44)

    def test_per_stream_isolation(self):
        engine = PolicyEngine()
        engine.report_timeliness(1, t_us=1.0, issued_us=0.0, now_us=1.0)
        assert engine.offset_of(1) > 1.0
        assert engine.offset_of(2) == 1.0

    def test_forget_stream(self):
        engine = PolicyEngine()
        engine.report_timeliness(3, t_us=1.0, issued_us=0.0, now_us=1.0)
        engine.forget_stream(3)
        assert engine.offset_of(3) == 1.0
