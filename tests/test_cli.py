"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_workloads_and_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "omp-kmeans" in out
        assert "hopp" in out
        assert "fastswap" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main([
            "run", "-w", "stream-simple", "-s", "hopp", "-f", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized performance" in out
        assert "coverage" in out

    def test_unknown_workload_fails(self, capsys):
        assert main(["run", "-w", "bogus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_system_fails(self):
        assert main(["run", "-w", "stream-simple", "-s", "bogus"]) == 2

    def test_crash_preset_prints_recovery_rows(self, capsys):
        code = main([
            "run", "-w", "quicksort", "-s", "noprefetch", "-f", "0.5",
            "--fault-plan", "crash", "--remote-nodes", "3",
            "--replication", "2", "--check-invariants",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "node crashes / rejoins" in out
        assert "pages repaired" in out
        assert "invariant checks passed" in out

    def test_bad_crash_seed_fails(self, capsys):
        assert main([
            "run", "-w", "stream-simple", "--fault-plan", "crash:soon",
        ]) == 2
        assert "crash:<int>" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_run_with_telemetry_artifacts(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.json"
        prom_file = tmp_path / "metrics.prom"
        code = main([
            "run", "-w", "stream-simple", "-s", "hopp", "-f", "0.5",
            "--no-cache", "--telemetry",
            "--trace-out", str(trace_file),
            "--prom-out", str(prom_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry events / epochs" in out
        trace = json.loads(trace_file.read_text())
        assert any(ev.get("ph") == "X" for ev in trace["traceEvents"])
        prom = prom_file.read_text()
        assert "# TYPE repro_accesses_total counter" in prom
        assert 'workload="stream-simple"' in prom

    def test_trace_out_implies_telemetry(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        code = main([
            "run", "-w", "stream-simple", "-s", "fastswap",
            "--no-cache", "--trace-out", str(trace_file),
        ])
        assert code == 0
        assert trace_file.exists()

    def test_default_run_has_no_telemetry_rows(self, capsys):
        assert main(["run", "-w", "stream-simple", "-s", "fastswap",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "telemetry events" not in out


class TestFaultPlanPresets:
    def test_crash_presets_resolve(self):
        from repro.cli import _load_fault_plan

        assert _load_fault_plan("crash", 3).node_crash
        assert _load_fault_plan("crash:7", 3).seed == 7
        plan = _load_fault_plan("crash-rejoin:2", 3)
        assert plan.seed == 2 and plan.node_rejoin
        assert _load_fault_plan("chaos", 3).node_crash == ()

    def test_corruption_presets_resolve(self):
        from repro.cli import _load_fault_plan

        plan = _load_fault_plan("corruption", 3)
        assert plan.has_corruption and plan.seed == 3
        assert plan.timeout_probability == 0
        assert _load_fault_plan("corruption:9", 3).seed == 9
        combo = _load_fault_plan("corruption-chaos:4", 3)
        assert combo.has_corruption and combo.timeout_probability > 0
        assert combo.seed == 4

    def test_bad_corruption_seed_fails(self, capsys):
        assert main([
            "run", "-w", "stream-simple", "--fault-plan", "corruption:x",
        ]) == 2
        assert "corruption:<int>" in capsys.readouterr().err


class TestFlagValidation:
    def test_nonpositive_scrub_rate_fails(self, capsys):
        for bad in ("0", "-5"):
            assert main([
                "run", "-w", "stream-simple", "--no-cache",
                "--scrub-rate", bad,
            ]) == 2
            assert "--scrub-rate must be > 0" in capsys.readouterr().err

    def test_nonpositive_cxl_latency_fails(self, capsys):
        assert main([
            "run", "-w", "stream-simple", "--no-cache",
            "--mem-tiers", "1", "--cxl-latency-us", "0",
        ]) == 2
        assert "--cxl-latency-us must be > 0" in capsys.readouterr().err

    def test_nonpositive_pool_capacity_fails(self, capsys):
        assert main([
            "run", "-w", "stream-simple", "--no-cache",
            "--mem-tiers", "1", "--pool-capacity", "-1",
        ]) == 2
        assert "--pool-capacity must be > 0" in capsys.readouterr().err

    def test_bad_tier_flags_fail_even_without_mem_tiers(self, capsys):
        # A typo'd override should not silently pass just because
        # tiering happened to be off.
        assert main([
            "run", "-w", "stream-simple", "--no-cache",
            "--cxl-latency-us", "-2",
        ]) == 2
        assert "--cxl-latency-us" in capsys.readouterr().err


class TestIntegrityFlags:
    def test_corruption_run_prints_integrity_rows(self, capsys):
        code = main([
            "run", "-w", "quicksort", "-s", "noprefetch", "-f", "0.5",
            "--no-cache", "--fault-plan", "corruption",
            "--remote-nodes", "3", "--replication", "2",
            "--scrub-rate", "5000", "--check-invariants",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "corruption detected (repaired/unresolved)" in out
        assert "scrub reads / scrub detections" in out

    def test_plain_run_has_no_integrity_rows(self, capsys):
        assert main(["run", "-w", "stream-simple", "-s", "fastswap",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "corruption detected" not in out


class TestCompare:
    def test_compare_table(self, capsys):
        code = main([
            "compare", "-w", "stream-simple",
            "--systems", "fastswap,hopp", "-f", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fastswap" in out
        assert "hopp" in out
        assert "norm-perf" in out


class TestTraceAndAnalyze:
    def test_trace_then_analyze(self, tmp_path, capsys):
        trace_file = tmp_path / "t.hmtt"
        code = main([
            "trace", "-w", "stream-simple", "-o", str(trace_file),
            "--limit", "4000",
        ])
        assert code == 0
        assert trace_file.exists()
        out = capsys.readouterr().out
        assert "wrote" in out

        code = main(["analyze", "--trace", str(trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "simple" in out

    def test_analyze_workload_directly(self, capsys):
        assert main(["analyze", "-w", "stream-ladder"]) == 0
        out = capsys.readouterr().out
        assert "ladder" in out

    def test_analyze_requires_exactly_one_source(self, capsys):
        assert main(["analyze"]) == 2
        assert main(["analyze", "--trace", "x", "-w", "y"]) == 2


class TestJson:
    def test_run_json_output(self, capsys):
        import json

        code = main([
            "run", "-w", "stream-simple", "-s", "fastswap", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "fastswap"
        assert 0.0 <= payload["accuracy"] <= 1.0
        assert "breakdown_us" in payload
        assert payload["ct_local_us"] > 0


class TestStudy:
    def test_trace_then_study(self, tmp_path, capsys):
        trace_file = tmp_path / "s.hmtt"
        assert main([
            "trace", "-w", "stream-simple", "-o", str(trace_file),
            "--limit", "6000",
        ]) == 0
        capsys.readouterr()
        assert main(["study", "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "offline prediction accuracy" in out


class TestTune:
    def test_tune_smoke_with_journal_and_report(self, tmp_path, capsys):
        import json

        journal = tmp_path / "tune.jsonl"
        report = tmp_path / "report.json"
        code = main([
            "tune", "-w", "stream-simple", "--budget", "3",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(journal), "--report-out", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best config" in out
        assert "cache:" in out  # the counters satellite
        # Journal: one header line plus one line per trial, all JSON.
        lines = journal.read_text().splitlines()
        assert len(lines) == 4
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert all(json.loads(l)["kind"] == "trial" for l in lines[1:])
        payload = json.loads(report.read_text())
        assert payload["best"]["score"] > 0
        assert len(payload["trajectory"]) == 3

    def test_tune_resume_replays_then_extends(self, tmp_path, capsys):
        journal = tmp_path / "tune.jsonl"
        args = ["tune", "-w", "stream-simple",
                "--cache-dir", str(tmp_path / "cache"),
                "--journal", str(journal)]
        assert main(args + ["--budget", "2"]) == 0
        capsys.readouterr()
        assert main(args + ["--budget", "4", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 replayed" in out
        assert len(journal.read_text().splitlines()) == 5

    def test_sha_requires_a_fidelity_ladder(self, tmp_path, capsys):
        assert main([
            "tune", "-w", "stream-simple", "--strategy", "sha",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        assert "--fidelity" in capsys.readouterr().err

    def test_unknown_space_and_strategy_fail(self, tmp_path, capsys):
        assert main([
            "tune", "-w", "stream-simple", "--space", "bogus",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        assert "unknown search space" in capsys.readouterr().err
        assert main([
            "tune", "-w", "stream-simple", "--strategy", "bogus",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        assert "--strategy" in capsys.readouterr().err

    def test_resume_without_journal_fails(self, tmp_path, capsys):
        assert main([
            "tune", "-w", "stream-simple", "--resume",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        assert "--journal" in capsys.readouterr().err


class TestSweepCacheCounters:
    def test_sweep_prints_cache_counters(self, tmp_path, capsys):
        args = ["sweep", "-w", "stream-simple", "-s", "hopp",
                "-f", "0.5", "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "cache:" in cold and "stores" in cold
        # The warm rerun must prove zero fresh simulations.
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm and "0 stores" in warm


class TestNumericFlagValidation:
    @pytest.mark.parametrize(
        "argv, flag",
        [
            (["tune", "-w", "stream-simple", "--budget", "0"], "--budget"),
            (["tune", "-w", "stream-simple", "--budget", "-3"], "--budget"),
            (["tune", "-w", "stream-simple", "--jobs", "0"], "--jobs"),
            (["tune", "-w", "stream-simple", "-f", "0"], "--fraction"),
            (["sweep", "-w", "stream-simple", "--jobs", "-1"], "--jobs"),
            (["sweep", "-w", "stream-simple", "--fractions", "0.5,0"],
             "--fractions"),
            (["compare", "-w", "stream-simple", "--jobs", "0"], "--jobs"),
            (["compare", "-w", "stream-simple", "-f", "-0.5"], "--fraction"),
        ],
    )
    def test_nonpositive_numeric_flags_fail_typed(self, argv, flag, capsys):
        assert main(argv + ["--no-cache"]) == 2
        err = capsys.readouterr().err
        assert flag in err and "must be > 0" in err
