"""End-to-end integration tests: the paper's headline claims must hold
as *shapes* on scaled-down workloads (see DESIGN.md section 7)."""

import pytest

from repro.sim import runner
from repro.trace.hmtt import HmttTracer
from repro.workloads import build
from tests.conftest import quiet_fabric


@pytest.fixture(scope="module")
def stream_comparison():
    wl = build("stream-simple", npages=400, passes=2)
    return runner.compare(
        wl, ["fastswap", "leap", "hopp", "hopp-swapcache"], 0.5, quiet_fabric()
    )


class TestHeadlineClaims:
    def test_hopp_beats_fastswap_on_streams(self, stream_comparison):
        assert (
            stream_comparison.normalized_performance("hopp")
            > stream_comparison.normalized_performance("fastswap")
        )

    def test_hopp_accuracy_and_coverage_over_90(self, stream_comparison):
        result = stream_comparison.results["hopp"]
        assert result.accuracy > 0.9
        assert result.coverage > 0.9

    def test_hopp_near_local_on_streams(self, stream_comparison):
        # Quicksort/K-means-grade patterns approach local performance.
        assert stream_comparison.normalized_performance("hopp") > 0.9

    def test_early_pte_injection_matters(self, stream_comparison):
        """hopp-swapcache differs only in injection: it must be slower
        (every hit pays the 2.3 us prefetch-hit fault, Section II-C)."""
        with_inject = stream_comparison.results["hopp"]
        without = stream_comparison.results["hopp-swapcache"]
        assert with_inject.completion_time_us < without.completion_time_us
        assert with_inject.prefetch_hit_dram > 0
        assert without.prefetch_hit_dram == 0

    def test_hopp_nearly_eliminates_page_faults(self, stream_comparison):
        hopp = stream_comparison.results["hopp"]
        fast = stream_comparison.results["fastswap"]
        assert hopp.page_faults < fast.page_faults / 2


class TestConcurrentStreams:
    def test_leap_confused_by_two_streams(self):
        """Section VI-E: with two threads, Leap's global fault history
        mixes the streams; HoPP's clustering keeps them apart."""
        wl = build("adder", pages_per_thread=400)
        comparison = runner.compare(
            wl, ["fastswap", "leap", "hopp"], 0.25, quiet_fabric()
        )
        assert comparison.normalized_performance("leap") <= (
            comparison.normalized_performance("fastswap") + 0.02
        )
        assert comparison.normalized_performance("hopp") > (
            comparison.normalized_performance("fastswap") + 0.1
        )

    def test_offset_control_beats_fixed_offsets(self):
        """Figure 22: dynamic offset > offset=1 and > offset=20K."""
        wl = build("adder", pages_per_thread=400)
        comparison = runner.compare(
            wl,
            ["hopp", "hopp-offset-1", "hopp-offset-20k"],
            0.25,
            quiet_fabric(),
        )
        dynamic = comparison.normalized_performance("hopp")
        assert dynamic > comparison.normalized_performance("hopp-offset-1")
        assert dynamic > comparison.normalized_performance("hopp-offset-20k")


class TestDepthN:
    def test_depth_n_wastes_bandwidth_on_strided_app(self):
        """Figure 17's shape: Depth-N issues the most remote reads on a
        large-stride app and can lose to Fastswap (NPB-FT here)."""
        wl = build("npb-ft", main_pages=800, iterations=2)
        comparison = runner.compare(
            wl, ["fastswap", "depth-32", "hopp"], 0.5, quiet_fabric()
        )
        depth = comparison.results["depth-32"]
        assert depth.remote_accesses > comparison.results["fastswap"].remote_accesses
        assert depth.remote_accesses > comparison.results["hopp"].remote_accesses
        assert comparison.normalized_performance("hopp") > (
            comparison.normalized_performance("depth-32")
        )


class TestTierContributions:
    def test_lsp_adds_coverage_on_ladders(self):
        """Figures 18-20: adding LSP to SSP raises coverage on a ladder
        workload without collapsing accuracy."""
        wl = build("stream-ladder", steps=400, passes=2)
        comparison = runner.compare(
            wl, ["hopp-ssp", "hopp-ssp-lsp"], 0.5, quiet_fabric()
        )
        ssp_only = comparison.results["hopp-ssp"]
        with_lsp = comparison.results["hopp-ssp-lsp"]
        assert with_lsp.coverage > ssp_only.coverage
        assert with_lsp.accuracy > 0.85

    def test_rsp_adds_coverage_on_ripples(self):
        wl = build("stream-ripple", npages=800, passes=2)
        comparison = runner.compare(
            wl, ["hopp-ssp-lsp", "hopp"], 0.5, quiet_fabric()
        )
        assert (
            comparison.results["hopp"].coverage
            >= comparison.results["hopp-ssp-lsp"].coverage
        )
        assert comparison.results["hopp"].hits_by_tier.get("rsp", 0) > 0


class TestFullTraceMotivation:
    def test_majority_full_beats_leap_prediction_quality(self):
        """Section II-B: the revamped majority prefetcher (full trace +
        clustering + large window) improves accuracy and coverage over
        fault-driven Leap."""
        wl = build("stream-interleaved", npages=500, passes=2)
        comparison = runner.compare(
            wl, ["leap", "majority-full"], 0.5, quiet_fabric()
        )
        leap = comparison.results["leap"]
        majority = comparison.results["majority-full"]
        assert majority.coverage > leap.coverage
        assert majority.accuracy >= leap.accuracy - 0.02


class TestHmttIntegration:
    def test_tracer_sees_every_mc_access(self):
        wl = build("stream-simple", npages=100, passes=1)
        machine = runner.make_machine(wl, "fastswap", 0.5, quiet_fabric())
        tracer = HmttTracer()
        tracer.attach(machine.controller)
        machine.run(wl.trace())
        assert tracer.ring.produced == machine.controller.accesses

    def test_trace_records_follow_physical_frames(self):
        wl = build("stream-simple", npages=50, passes=1)
        machine = runner.make_machine(wl, "noprefetch", 4.0, quiet_fabric())
        tracer = HmttTracer()
        tracer.attach(machine.controller)
        machine.run(wl.trace())
        ppns = {record.ppn for record in tracer.ring.drain()}
        # 50 pages mapped to 50 distinct frames.
        assert len(ppns) == 50


class TestSpark:
    def test_jvm_coverage_lower_than_omp(self):
        """Section VI-B: Spark coverage trails the non-JVM apps."""
        omp = runner.run(build("omp-kmeans"), "hopp", 0.5, quiet_fabric())
        spark = runner.run(build("spark-kmeans"), "hopp", 0.15, quiet_fabric())
        assert spark.coverage < omp.coverage

    def test_hopp_still_wins_on_spark(self):
        wl = build("spark-kmeans")
        comparison = runner.compare(wl, ["fastswap", "hopp"], 0.15, quiet_fabric())
        assert comparison.speedup("hopp") > 0.1
