"""Property-based tests over the *full* HoPP pipeline: for arbitrary
access patterns, the machine + data plane must preserve the global
invariants the metrics depend on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import runner
from repro.sim.runner import collect, make_machine
from repro.workloads import build
from tests.conftest import quiet_fabric

# Strategy: short segments of (base, length, stride) walks — enough to
# produce streams, jumps, and revisits without huge traces.
segments = st.lists(
    st.tuples(
        st.integers(0, 300),          # base vpn (offset from 1<<20)
        st.integers(1, 40),           # pages
        st.sampled_from([-2, -1, 1, 2, 3]),  # stride
    ),
    min_size=1,
    max_size=12,
)


def trace_from_segments(segs, blocks=8):
    base_vpn = 1 << 20
    for start, npages, stride in segs:
        vpn = base_vpn + start
        for _ in range(npages):
            if vpn >= base_vpn:
                for block in range(blocks):
                    yield 1, (vpn << 12) | (block << 6)
            vpn += stride


class TestPipelineInvariants:
    @given(segments)
    @settings(max_examples=25, deadline=None)
    def test_metric_bounds_and_conservation(self, segs):
        workload = build("stream-simple", npages=64)  # only for sizing
        machine = make_machine(workload, "hopp", 0.3, quiet_fabric())
        machine.run(trace_from_segments(segs))
        result = collect(machine, "hopp", "property")

        # Bounds.
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.0 <= result.coverage <= 1.0
        assert result.prefetch_hits <= result.prefetch_issued
        assert result.prefetch_wasted <= result.prefetch_issued
        # Every access resolved exactly one way.
        classified = (
            result.minor_faults
            + result.remote_demand_reads
            + result.prefetch_hit_swapcache
            + result.prefetch_hit_inflight
        )
        assert classified <= result.accesses
        # Fabric reads = demand reads + issued prefetch pages.
        assert result.fabric_reads == (
            result.remote_demand_reads + result.prefetch_issued
        )
        # Residency never exceeds the cgroup limit.
        limit = machine.cgroups.get("default").limit_pages
        assert machine.resident_pages("default") <= limit
        assert machine.frames.used == machine.resident_pages("default")

    @given(segments)
    @settings(max_examples=15, deadline=None)
    def test_hopp_never_slower_than_noprefetch_by_much(self, segs):
        """Prefetching may waste bandwidth but must not catastrophically
        regress the access-path costs (its issue path is off the
        critical path; only pollution can hurt, bounded here)."""
        times = {}
        for system in ("noprefetch", "hopp"):
            workload = build("stream-simple", npages=64)
            machine = make_machine(workload, system, 0.3, quiet_fabric())
            machine.run(trace_from_segments(segs))
            times[system] = machine.now_us
        assert times["hopp"] <= times["noprefetch"] * 1.35 + 100.0

    @given(segments, st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, segs, seed):
        results = []
        for _ in range(2):
            workload = build("stream-simple", npages=64, seed=seed)
            machine = make_machine(workload, "hopp", 0.3, quiet_fabric(seed))
            machine.run(trace_from_segments(segs))
            results.append(
                (machine.now_us, machine.prefetch_issued,
                 machine.remote_demand_reads)
            )
        assert results[0] == results[1]
