"""Design-space autotuner: DSL validation, strategy determinism,
journal resume, and the cache-key property every dimension must hold.
"""

from __future__ import annotations

import json
from random import Random

import pytest

from repro.exec.cache import ResultCache, cache_key
from repro.exec.spec import RunSpec
from repro.sim import systems as systems_mod
from repro.tune import (
    CatParam,
    Constraint,
    Evolutionary,
    FidelitySpec,
    FloatParam,
    IntParam,
    Objective,
    ObjectiveError,
    RandomSearch,
    SearchSpace,
    SpaceError,
    StrategyError,
    SuccessiveHalving,
    TuneError,
    Tuner,
    build_space,
    build_strategy,
    default_config,
    pareto_front,
    space_names,
    strategy_names,
    to_run_spec,
)
from tests.conftest import quiet_fabric


def small_base(**overrides) -> RunSpec:
    base = dict(
        workload="stream-simple",
        system="hopp",
        fraction=0.5,
        seed=3,
        workload_kwargs={"npages": 64, "passes": 1},
        fabric=quiet_fabric(3),
    )
    base.update(overrides)
    return RunSpec(**base)


def tiny_space() -> SearchSpace:
    return SearchSpace(
        (
            IntParam("system.hpd_threshold", 2, 32, log=True),
            CatParam("system.hpd_sets", (1, 4, 16)),
            FloatParam("system.policy.alpha", 0.05, 0.8, log=True),
        ),
        name="tiny",
    )


# ---------------------------------------------------------------------------
# DSL


class TestParams:
    def test_bad_binding_root_rejected(self):
        with pytest.raises(SpaceError, match="root"):
            IntParam("bogus.threshold", 1, 4)

    def test_run_root_only_binds_fraction(self):
        with pytest.raises(SpaceError, match="run.fraction"):
            FloatParam("run.seed", 0.1, 1.0)

    def test_int_bounds_validated(self):
        with pytest.raises(SpaceError, match="lo"):
            IntParam("system.hpd_threshold", 9, 4)
        with pytest.raises(SpaceError, match="log"):
            IntParam("system.hpd_threshold", 0, 4, log=True)

    def test_float_log_needs_positive_lo(self):
        with pytest.raises(SpaceError, match="log"):
            FloatParam("system.policy.alpha", 0.0, 1.0, log=True)

    def test_cat_needs_distinct_choices(self):
        with pytest.raises(SpaceError, match="choices"):
            CatParam("system.hpd_sets", (4,))
        with pytest.raises(SpaceError, match="duplicate"):
            CatParam("system.hpd_sets", (4, 4))

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_sampling_within_bounds_and_deterministic(self, seed):
        space = tiny_space()
        a = space.sample(Random(seed))
        b = space.sample(Random(seed))
        assert a == b
        space.validate(a)

    def test_mutation_moves_and_stays_valid(self):
        space = tiny_space()
        rng = Random(11)
        config = space.sample(rng)
        for _ in range(50):
            child = space.mutate(config, rng)
            assert child != config  # at least one dimension moved
            space.validate(child)
            config = child

    def test_int_validate_rejects_bool_and_float(self):
        param = IntParam("system.hpd_threshold", 2, 32)
        with pytest.raises(SpaceError):
            param.validate(True)
        with pytest.raises(SpaceError):
            param.validate(8.0)
        with pytest.raises(SpaceError):
            param.validate(64)

    def test_space_rejects_duplicates_and_empty(self):
        with pytest.raises(SpaceError, match="duplicate"):
            SearchSpace(
                (
                    IntParam("system.hpd_threshold", 2, 4),
                    IntParam("system.hpd_threshold", 2, 8),
                )
            )
        with pytest.raises(SpaceError, match=">= 1"):
            SearchSpace(())

    def test_validate_flags_missing_and_extra(self):
        space = tiny_space()
        with pytest.raises(SpaceError, match="missing"):
            space.validate({"system.hpd_threshold": 4})

    def test_space_round_trips_through_dict(self):
        space = tiny_space()
        clone = SearchSpace.from_dict(json.loads(json.dumps(space.to_dict())))
        assert clone == space

    def test_named_spaces_build(self):
        assert set(space_names()) >= {"hpd", "hopp-core", "placement", "full"}
        for name in space_names():
            space = build_space(name)
            space.validate(space.sample(Random(1)))


class TestBinding:
    def test_system_dims_land_in_system_kwargs(self):
        spec = to_run_spec(small_base(), {"system.hpd_threshold": 16})
        assert spec.system_kwargs == {"hpd_threshold": 16}

    def test_workload_dims_merge_into_kwargs(self):
        spec = to_run_spec(small_base(), {"workload.passes": 2})
        assert spec.workload_kwargs["passes"] == 2
        assert spec.workload_kwargs["npages"] == 64

    def test_cluster_and_fraction_dims(self):
        spec = to_run_spec(
            small_base(),
            {"cluster.nodes": 3, "cluster.replication": 2, "run.fraction": 0.25},
        )
        assert spec.cluster.nodes == 3
        assert spec.cluster.replication == 2
        assert spec.fraction == 0.25

    def test_memtier_pool_nodes_zero_means_untiered(self):
        off = to_run_spec(
            small_base(),
            {"memtier.pool_nodes": 0, "memtier.cxl_latency_us": 1.0},
        )
        assert off.memtier is None
        on = to_run_spec(
            small_base(),
            {"memtier.pool_nodes": 2, "memtier.cxl_latency_us": 1.0},
        )
        assert on.memtier.pool_nodes == 2
        assert on.memtier.cxl_latency_us == 1.0

    def test_base_spec_is_not_mutated(self):
        base = small_base()
        to_run_spec(base, {"system.hpd_threshold": 16, "workload.passes": 2})
        assert base.system_kwargs == {}
        assert base.workload_kwargs["passes"] == 1

    def test_default_config_is_the_paper_point(self):
        space = build_space("hpd")
        point = default_config(space, small_base())
        space.validate(point)
        knobs = systems_mod.hopp_knob_values("hopp")
        assert point["system.hpd_threshold"] == knobs["hpd_threshold"]

    def test_default_config_snaps_outside_values(self):
        space = SearchSpace(
            (CatParam("cluster.nodes", (2, 3)),), name="snap"
        )
        # The base's single-node cluster is outside the space; it snaps
        # to the nearest choice rather than failing.
        point = default_config(space, small_base())
        assert point["cluster.nodes"] == 2


class TestEveryDimensionPerturbsTheCacheKey:
    """Satellite property: a search dimension that does not reach the
    cache key would make the tuner silently reuse a wrong result."""

    @pytest.mark.parametrize("space_name", ["hpd", "hopp-core", "placement"])
    def test_each_dimension_perturbs_key(self, space_name):
        space = build_space(space_name)
        config = space.sample(Random(5))
        if "memtier.pool_nodes" in config:
            # With the pool off, pooled-tier knobs are legitimately
            # irrelevant; pin it on so every memtier dim is live.
            config["memtier.pool_nodes"] = 2
        base = small_base()
        baseline = cache_key(to_run_spec(base, config))
        for param in space:
            changed = dict(config)
            value = config[param.name]
            if isinstance(param, CatParam):
                others = [c for c in param.choices if c != value]
                changed[param.name] = others[0]
            elif isinstance(param, IntParam):
                changed[param.name] = (
                    param.lo if value != param.lo else param.hi
                )
            else:
                changed[param.name] = (
                    param.lo if value != param.lo else param.hi
                )
            assert cache_key(to_run_spec(base, changed)) != baseline, (
                f"{param.name} does not perturb the cache key"
            )


# ---------------------------------------------------------------------------
# Objective


class TestObjective:
    METRICS = {
        "normalized_performance": 0.8,
        "accuracy": 0.6,
        "coverage": 0.7,
        "completion_time_us": 1000.0,
        "page_faults": 50.0,
        "remote_accesses": 100.0,
        "prefetch_wasted": 5.0,
        "prefetch_issued": 80.0,
    }

    def test_plain_goal_score(self):
        assert Objective().score(self.METRICS) == 0.8

    def test_minimize_negates(self):
        objective = Objective.parse("-completion_time_us")
        assert objective.score(self.METRICS) == -1000.0

    def test_constraint_penalty_applies(self):
        objective = Objective.parse(
            "normalized_performance", ["accuracy>=0.9@10"]
        )
        score = objective.score(self.METRICS)
        assert score == pytest.approx(0.8 - 10 * 0.3)
        assert not objective.feasible(self.METRICS)

    def test_satisfied_constraint_costs_nothing(self):
        objective = Objective.parse(
            "normalized_performance", ["accuracy>=0.5"]
        )
        assert objective.score(self.METRICS) == 0.8
        assert objective.feasible(self.METRICS)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ObjectiveError):
            Objective.parse("no_such_metric")
        with pytest.raises(ObjectiveError):
            Constraint.parse("accuracy=0.5")
        with pytest.raises(ObjectiveError):
            Constraint.parse("accuracy>=abc")

    def test_pareto_front_keeps_nondominated(self):
        rows = [
            {"coverage": 0.9, "accuracy": 0.5},
            {"coverage": 0.5, "accuracy": 0.9},
            {"coverage": 0.4, "accuracy": 0.4},  # dominated by both
            {"coverage": 0.9, "accuracy": 0.5},  # tie with row 0: kept
        ]
        assert pareto_front(rows) == [0, 1, 3]


# ---------------------------------------------------------------------------
# Strategies


def _fake_trials(requests, start, scorer):
    from repro.tune import Trial

    return [
        Trial(
            index=start + i,
            config=dict(r.config),
            fidelity=r.fidelity,
            metrics={},
            score=scorer(r.config),
        )
        for i, r in enumerate(requests)
    ]


class TestStrategies:
    def test_registry(self):
        assert strategy_names() == ["evolve", "random", "sha"]
        with pytest.raises(StrategyError, match="unknown strategy"):
            build_strategy("hillclimb", tiny_space(), 1)

    def test_random_is_deterministic_per_seed(self):
        a = RandomSearch(tiny_space(), seed=5).ask(8)
        b = RandomSearch(tiny_space(), seed=5).ask(8)
        assert [r.config for r in a] == [r.config for r in b]
        c = RandomSearch(tiny_space(), seed=6).ask(8)
        assert [r.config for r in a] != [r.config for r in c]

    def test_random_prefix_property(self):
        # ask(small) proposals are a prefix of ask(large): the
        # trajectory cannot depend on the budget, only on the seed.
        a = RandomSearch(tiny_space(), seed=5).ask(3)
        b = RandomSearch(tiny_space(), seed=5).ask(8)
        assert [r.config for r in a] == [r.config for r in b][:3]

    def test_evolve_warm_start_leads_generation_zero(self):
        space = tiny_space()
        expert = {
            "system.hpd_threshold": 8,
            "system.hpd_sets": 4,
            "system.policy.alpha": 0.2,
        }
        strategy = Evolutionary(space, seed=2, mu=3, lam=3,
                                seed_configs=[expert])
        gen0 = strategy.ask(10)
        assert gen0[0].config == expert
        assert len(gen0) == 3

    def test_evolve_children_mutate_parents(self):
        space = tiny_space()
        strategy = Evolutionary(space, seed=2, mu=2, lam=4)
        gen0 = strategy.ask(10)
        strategy.tell(_fake_trials(gen0, 0, lambda c: c["system.hpd_threshold"]))
        children = strategy.ask(10)
        assert len(children) == 4
        for child in children:
            space.validate(child.config)

    def test_evolve_rejects_invalid_seed_config(self):
        with pytest.raises(SpaceError):
            Evolutionary(tiny_space(), seed=2, seed_configs=[{"bad": 1}])

    def test_sha_promotes_top_fraction_per_rung(self):
        space = tiny_space()
        strategy = SuccessiveHalving(space, seed=4, initial=4, eta=2, rungs=2)
        rung0 = strategy.ask(100)
        assert [r.fidelity for r in rung0] == [0, 0, 0, 0]
        # Score by threshold: the two highest-threshold configs survive.
        trials = _fake_trials(rung0, 0,
                              lambda c: c["system.hpd_threshold"])
        strategy.tell(trials)
        rung1 = strategy.ask(100)
        assert [r.fidelity for r in rung1] == [1, 1]
        survivors = sorted(trials, key=lambda t: -t.score)[:2]
        assert [r.config for r in rung1] == [t.config for t in survivors]
        strategy.tell(_fake_trials(rung1, 4, lambda c: 0.0))
        assert strategy.finished()

    def test_sha_plan_initial_fits_budget(self):
        assert SuccessiveHalving.plan_initial(9, eta=2, rungs=2) == 6
        assert SuccessiveHalving.plan_initial(1, eta=2, rungs=2) == 1
        for budget in range(1, 30):
            n0 = SuccessiveHalving.plan_initial(budget, eta=2, rungs=2)
            assert n0 + max(1, n0 // 2) <= max(budget, 2)


# ---------------------------------------------------------------------------
# Tuner end-to-end


def make_tuner(tmp_path, budget, seed=3, journal=None, resume=False,
               cache_name="cache", strategy=None):
    space = build_space("hpd")
    base = small_base()
    strategy = strategy or RandomSearch(space, seed=seed, batch=2)
    return Tuner(
        space, strategy, base, budget=budget, objective=Objective(),
        cache=ResultCache(tmp_path / cache_name),
        journal=journal, resume=resume,
    )


class TestTuner:
    def test_rejects_bad_budget_and_jobs(self, tmp_path):
        with pytest.raises(TuneError, match="budget"):
            make_tuner(tmp_path, budget=0)
        space = build_space("hpd")
        with pytest.raises(TuneError, match="jobs"):
            Tuner(space, RandomSearch(space, 1), small_base(),
                  budget=1, jobs=0)

    def test_budget_is_respected(self, tmp_path):
        result = make_tuner(tmp_path, budget=3).run()
        assert len(result.trials) == 3
        assert result.evaluations == 3

    def test_same_seed_same_trajectory(self, tmp_path):
        a = make_tuner(tmp_path, budget=4, cache_name="a").run()
        b = make_tuner(tmp_path, budget=4, cache_name="b").run()
        assert a.trajectory() == b.trajectory()
        assert [t.config for t in a.trials] == [t.config for t in b.trials]
        assert a.best.index == b.best.index

    def test_warm_rerun_is_all_cache_hits(self, tmp_path):
        make_tuner(tmp_path, budget=4).run()
        warm = make_tuner(tmp_path, budget=4).run()
        stats = warm.cache_stats
        assert stats["misses"] == 0 and stats["stores"] == 0
        assert stats["hits"] > 0

    def test_kill_then_resume_reproduces_the_trajectory(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        # The "killed" run: two of four trials land in the journal.
        partial = make_tuner(tmp_path, budget=2, journal=journal).run()
        assert len(journal.read_text().splitlines()) == 3  # header + 2
        # Resume with the full budget.
        resumed = make_tuner(tmp_path, budget=4, journal=journal,
                             resume=True).run()
        assert resumed.journal_replays == 2
        assert resumed.evaluations == 2
        assert [t.config for t in resumed.trials[:2]] == [
            t.config for t in partial.trials
        ]
        # ... and the resumed trajectory equals an uninterrupted run's.
        fresh = make_tuner(tmp_path, budget=4, cache_name="fresh").run()
        assert resumed.trajectory() == fresh.trajectory()
        assert resumed.best.config == fresh.best.config
        # The journal now holds all four trials.
        assert len(journal.read_text().splitlines()) == 5

    def test_resume_refuses_a_different_search(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        make_tuner(tmp_path, budget=2, journal=journal).run()
        with pytest.raises(TuneError, match="header does not match"):
            make_tuner(tmp_path, budget=2, seed=99, journal=journal,
                       resume=True).run()

    def test_resume_refuses_garbage_journal(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        journal.write_text("not json\n")
        with pytest.raises(TuneError, match="JSONL"):
            make_tuner(tmp_path, budget=2, journal=journal,
                       resume=True).run()

    def test_sha_end_to_end_with_fidelity(self, tmp_path):
        space = build_space("hpd")
        strategy = SuccessiveHalving(space, seed=4, initial=4, eta=2,
                                     rungs=2)
        tuner = Tuner(
            space, strategy, small_base(), budget=6,
            objective=Objective(),
            fidelity=FidelitySpec("passes", (1, 2)),
            cache=ResultCache(tmp_path / "cache"),
        )
        result = tuner.run()
        assert [t.fidelity for t in result.trials] == [0, 0, 0, 0, 1, 1]
        # Best comes from the full-fidelity rung only.
        assert result.best.fidelity == 1

    def test_sha_without_fidelity_spec_is_an_error(self, tmp_path):
        space = build_space("hpd")
        strategy = SuccessiveHalving(space, seed=4, initial=2, eta=2,
                                     rungs=2)
        tuner = Tuner(space, strategy, small_base(), budget=4,
                      objective=Objective(),
                      cache=ResultCache(tmp_path / "cache"))
        with pytest.raises(TuneError, match="FidelitySpec"):
            tuner.run()

    def test_evolve_warm_start_never_loses_to_paper(self, tmp_path):
        space = build_space("hpd")
        base = small_base()
        paper = default_config(space, base)
        strategy = Evolutionary(space, seed=3, mu=2, lam=2,
                                seed_configs=[paper])
        result = Tuner(space, strategy, base, budget=4,
                       objective=Objective(),
                       cache=ResultCache(tmp_path / "cache")).run()
        paper_trial = result.trials[0]
        assert paper_trial.config == paper
        assert result.best.score >= paper_trial.score

    def test_trajectory_is_monotone(self, tmp_path):
        result = make_tuner(tmp_path, budget=4).run()
        bests = [score for _, score in result.trajectory()]
        assert bests == sorted(bests)


# ---------------------------------------------------------------------------
# systems.variant (the plumbing the system.* dimensions ride)


class TestVariant:
    def test_overrides_are_validated_up_front(self):
        with pytest.raises(ValueError, match="unknown HoPP knob"):
            systems_mod.variant("hopp", {"no_such_knob": 1})
        with pytest.raises(ValueError, match="wants an int"):
            systems_mod.variant("hopp", {"hpd_threshold": "high"})

    def test_non_hopp_systems_are_not_tunable(self):
        with pytest.raises(ValueError, match="not tunable"):
            systems_mod.variant("fastswap", {"hpd_threshold": 4})

    def test_variant_keeps_name_and_stays_cacheable(self):
        from repro.exec.cache import cacheability

        spec = small_base(system_kwargs={"hpd_threshold": 16})
        ok, why = cacheability(spec)
        assert ok, why
        variant = systems_mod.variant("hopp", {"hpd_threshold": 16})
        assert variant.name == "hopp"

    def test_knob_values_cover_every_knob(self):
        values = systems_mod.hopp_knob_values("hopp")
        assert set(values) == set(systems_mod.hopp_knobs())
