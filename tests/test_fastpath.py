"""Differential tests for the resident-hit fast path in Machine.run.

``Machine.run(use_fast_path=False)`` is the oracle: the plain
per-access loop with no local batching or specialized dispatch.  The
fast path must be *invisible* — byte-identical counters, latencies and
per-component breakdowns on every system, including mixed read/write
traces (writes dirty pages and change writeback traffic) and prefetch
taps (which re-enter the machine mid-loop).
"""

from __future__ import annotations

import pytest

from repro.sim import runner
from repro.sim.runner import collect, make_machine
from repro.workloads import build
from tests.conftest import quiet_fabric

SYSTEMS = ["noprefetch", "fastswap", "leap", "hopp", "hopp-evict"]


def run_both(workload_name, system, fraction, seed=3, trace=None,
             **workload_kwargs):
    """One run through the fast dispatcher, one through the oracle loop,
    on the same materialized trace."""
    results = []
    workload = build(workload_name, seed=seed, **workload_kwargs)
    if trace is None:
        trace = list(workload.trace())
    for fast in (True, False):
        machine = make_machine(workload, system, fraction, quiet_fabric(seed))
        machine.run(trace, use_fast_path=fast)
        machine.flush_recovery()
        results.append(collect(machine, system, workload_name))
    return results


def with_writes(trace, every=3):
    """Mark every ``every``-th access as a write (3-tuple form)."""
    return [
        (item[0], item[1], True) if i % every == 0 else item
        for i, item in enumerate(trace)
    ]


class TestFastPathEquivalence:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_stream_workload(self, system):
        fast, slow = run_both("stream-simple", system, 0.5,
                              npages=128, passes=2)
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    @pytest.mark.parametrize("system", ["fastswap", "hopp"])
    def test_mixed_read_write_trace(self, system):
        # Writes dirty resident pages (changing eviction writeback
        # traffic) and land on the MC write counter — the fast path must
        # account both identically.  No stock workload emits the
        # 3-tuple form, so mark every third access a write explicitly.
        trace = with_writes(list(build("kv-cache", seed=3).trace()))
        assert any(len(item) > 2 and item[2] for item in trace)
        fast, slow = run_both("kv-cache", system, 0.5, trace=trace)
        assert fast.mc_reads > 0
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    @pytest.mark.parametrize("fraction", [0.25, 1.0, 4.0])
    def test_across_memory_pressure(self, fraction):
        # 4.0 = everything resident (pure fast path); 0.25 = constant
        # reclaim (fast path mostly falls through to access()).
        fast, slow = run_both("stream-ladder", "hopp", fraction)
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    def test_multi_process_workload(self):
        fast, slow = run_both("omp-kmeans", "hopp", 0.5)
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    def test_runner_uses_fast_path_result(self):
        # runner.run (the production entry) must equal the oracle too.
        workload = build("stream-simple", seed=3, npages=128, passes=2)
        via_runner = runner.run(workload, "hopp", 0.5, quiet_fabric(3))
        _, slow = run_both("stream-simple", "hopp", 0.5,
                           npages=128, passes=2)
        assert via_runner.to_dict(full=True) == slow.to_dict(full=True)


class TestFastPathGating:
    def test_sanitizer_forces_slow_loop(self):
        # With the invariant sanitizer armed the dispatcher must take
        # the per-access loop (the sanitizer sweeps every N accesses,
        # so the trace must be long enough to cross that interval).
        workload = build("stream-simple", seed=3, npages=256, passes=10)
        trace = list(workload.trace())
        assert len(trace) >= 2000
        a = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                         check_invariants=True)
        a.run(trace)
        b = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                         check_invariants=True)
        b.run(trace, use_fast_path=False)
        assert collect(a, "hopp", "s").to_dict(full=True) == \
            collect(b, "hopp", "s").to_dict(full=True)
        assert a.sanitizer.checks_run > 0
