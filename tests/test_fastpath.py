"""Differential tests for the resident-hit fast path in Machine.run.

``Machine.run(use_fast_path=False)`` is the oracle: the plain
per-access loop with no local batching or specialized dispatch.  The
fast path must be *invisible* — byte-identical counters, latencies and
per-component breakdowns on every system, including mixed read/write
traces (writes dirty pages and change writeback traffic) and prefetch
taps (which re-enter the machine mid-loop).
"""

from __future__ import annotations

import random

import pytest

from repro.common.constants import BLOCK_SHIFT, PAGE_SHIFT
from repro.sim import batchkernel, runner
from repro.sim.runner import collect, make_machine
from repro.workloads import build
from tests.conftest import quiet_fabric

SYSTEMS = ["noprefetch", "fastswap", "leap", "hopp", "hopp-evict"]


def run_both(workload_name, system, fraction, seed=3, trace=None,
             **workload_kwargs):
    """One run through the fast dispatcher, one through the oracle loop,
    on the same materialized trace."""
    results = []
    workload = build(workload_name, seed=seed, **workload_kwargs)
    if trace is None:
        trace = list(workload.trace())
    for fast in (True, False):
        machine = make_machine(workload, system, fraction, quiet_fabric(seed))
        machine.run(trace, use_fast_path=fast)
        machine.flush_recovery()
        results.append(collect(machine, system, workload_name))
    return results


def with_writes(trace, every=3):
    """Mark every ``every``-th access as a write (3-tuple form)."""
    return [
        (item[0], item[1], True) if i % every == 0 else item
        for i, item in enumerate(trace)
    ]


class TestFastPathEquivalence:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_stream_workload(self, system):
        fast, slow = run_both("stream-simple", system, 0.5,
                              npages=128, passes=2)
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    @pytest.mark.parametrize("system", ["fastswap", "hopp"])
    def test_mixed_read_write_trace(self, system):
        # Writes dirty resident pages (changing eviction writeback
        # traffic) and land on the MC write counter — the fast path must
        # account both identically.  No stock workload emits the
        # 3-tuple form, so mark every third access a write explicitly.
        trace = with_writes(list(build("kv-cache", seed=3).trace()))
        assert any(len(item) > 2 and item[2] for item in trace)
        fast, slow = run_both("kv-cache", system, 0.5, trace=trace)
        assert fast.mc_reads > 0
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    @pytest.mark.parametrize("fraction", [0.25, 1.0, 4.0])
    def test_across_memory_pressure(self, fraction):
        # 4.0 = everything resident (pure fast path); 0.25 = constant
        # reclaim (fast path mostly falls through to access()).
        fast, slow = run_both("stream-ladder", "hopp", fraction)
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    def test_multi_process_workload(self):
        fast, slow = run_both("omp-kmeans", "hopp", 0.5)
        assert fast.to_dict(full=True) == slow.to_dict(full=True)

    def test_runner_uses_fast_path_result(self):
        # runner.run (the production entry) must equal the oracle too.
        workload = build("stream-simple", seed=3, npages=128, passes=2)
        via_runner = runner.run(workload, "hopp", 0.5, quiet_fabric(3))
        _, slow = run_both("stream-simple", "hopp", 0.5,
                           npages=128, passes=2)
        assert via_runner.to_dict(full=True) == slow.to_dict(full=True)


def page_sweep_trace(workload, npages=48, sweeps=3, run_len=64):
    """Page-sequential full-page sweeps: same-page runs of exactly
    ``run_len`` accesses, so chunk sizes that divide (or just miss) the
    run length put chunk edges exactly on run and extraction
    boundaries."""
    proc = workload.processes[0]
    start_vpn, vma_pages, _ = proc.vmas[0]
    npages = min(npages, vma_pages)
    trace = []
    for _ in range(sweeps):
        for vpn in range(start_vpn, start_vpn + npages):
            base = vpn << PAGE_SHIFT
            for block in range(run_len):
                trace.append((proc.pid, base | (block << BLOCK_SHIFT)))
    return trace


class TestBatchKernelAdversarial:
    """Batched kernel == oracle under adversarial barrier placement.

    The kernel's barriers are chunk edges, due prefetch arrivals, and
    HPD extractions; these tests pin traces and chunk sizes chosen so
    those barriers collide (arrival due exactly at a chunk edge,
    extraction at the last access of a chunk, chunk_size=1 degenerating
    every run to a single access)."""

    def _oracle(self, workload, trace, **machine_kwargs):
        machine = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                               **machine_kwargs)
        machine.run(trace, use_fast_path=False)
        machine.flush_recovery()
        return collect(machine, "hopp", "adv").to_dict(full=True)

    @pytest.mark.parametrize("chunk", [1, 2, 7, 63, 64, 65, 4096])
    def test_chunk_edges_on_run_and_extraction_boundaries(self, chunk):
        # Runs of exactly 64 accesses: chunk 64 puts every chunk edge on
        # a run boundary (and the HPD extraction for a fresh page fires
        # threshold accesses in — mid-chunk, last-access, first-access
        # depending on chunk phase); 63/65 walk the edge through every
        # phase; 1 degenerates the scan entirely.  At fraction 0.5 the
        # sweeps fault, prefetch, and evict, so due arrivals land on
        # those edges too.
        workload = build("stream-simple", seed=3)
        trace = page_sweep_trace(workload)
        want = self._oracle(workload, trace)
        machine = make_machine(workload, "hopp", 0.5, quiet_fabric(3))
        machine.run(trace, chunk_size=chunk)
        machine.flush_recovery()
        got = collect(machine, "hopp", "adv").to_dict(full=True)
        assert got == want

    def test_chunk_size_one_with_writes(self):
        workload = build("stream-simple", seed=3)
        trace = with_writes(page_sweep_trace(workload, npages=24, sweeps=2))
        want = self._oracle(workload, trace)
        machine = make_machine(workload, "hopp", 0.5, quiet_fabric(3))
        machine.run(trace, chunk_size=1)
        machine.flush_recovery()
        assert collect(machine, "hopp", "adv").to_dict(full=True) == want

    def test_telemetry_armed(self):
        from repro.telemetry import TelemetryConfig

        workload = build("stream-simple", seed=3)
        trace = page_sweep_trace(workload)
        want = self._oracle(workload, trace, telemetry=TelemetryConfig())
        machine = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                               telemetry=TelemetryConfig())
        machine.run(trace)
        machine.flush_recovery()
        assert collect(machine, "hopp", "adv").to_dict(full=True) == want

    def test_chaos_fault_plan(self):
        from repro.net.faults import FaultPlan

        workload = build("stream-simple", seed=3)
        trace = page_sweep_trace(workload)
        want = self._oracle(workload, trace, fault_plan=FaultPlan.chaos(seed=3))
        machine = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                               fault_plan=FaultPlan.chaos(seed=3))
        machine.run(trace)
        machine.flush_recovery()
        assert collect(machine, "hopp", "adv").to_dict(full=True) == want

    def test_memtier_active(self):
        from repro.memtier import MemtierConfig

        workload = build("stream-simple", seed=3)
        trace = page_sweep_trace(workload)
        want = self._oracle(workload, trace, memtier=MemtierConfig())
        machine = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                               memtier=MemtierConfig())
        machine.run(trace)
        machine.flush_recovery()
        assert collect(machine, "hopp", "adv").to_dict(full=True) == want

    def test_legacy_kernel_matches_batched(self):
        workload = build("stream-simple", seed=3)
        trace = page_sweep_trace(workload)
        a = make_machine(workload, "hopp", 0.5, quiet_fabric(3))
        a.run(trace)
        b = make_machine(workload, "hopp", 0.5, quiet_fabric(3))
        b.run(trace, kernel="legacy")
        assert collect(a, "hopp", "adv").to_dict(full=True) == \
            collect(b, "hopp", "adv").to_dict(full=True)


class TestBatchPrimitives:
    """The kernel's building blocks against their per-access originals."""

    def test_seq_add_chains_bit_identical(self):
        # The deferred-retirement replay must perform the same float
        # additions as the oracle's per-access loop, through both the
        # Python fold and the cumsum branches.
        import numpy as np

        rng = random.Random(7)
        seq_buf = np.empty(5001)
        buf3 = np.empty((3, 5001))
        for _ in range(200):
            k = rng.choice([0, 1, 31, 32, 33, 64, 1000, 4096])
            consts = [rng.uniform(0.001, 3.0) for _ in range(3)]
            starts = [rng.uniform(0.0, 1e7) for _ in range(3)]
            want = []
            for x, c in zip(starts, consts):
                for _ in range(k):
                    x += c
                want.append(x)
            got1 = [
                batchkernel._seq_add(x, c, k, seq_buf, np.cumsum)
                for x, c in zip(starts, consts)
            ]
            got3 = list(batchkernel._seq_add3(
                starts[0], starts[1], starts[2],
                consts[0], consts[1], consts[2], k, buf3,
            ))
            assert got1 == want
            assert got3 == want

    def test_hpd_process_run_equivalence(self):
        from repro.hopp.hpd import HotPageDetector

        rng = random.Random(11)
        a = HotPageDetector()
        b = HotPageDetector()
        for _ in range(400):
            ppn = rng.randrange(40)
            reads = rng.randrange(1, 20)
            # Oracle: per-access process, stopping at the extraction.
            want_used, want_hot = reads, None
            for idx in range(reads):
                hot = a.process(ppn << PAGE_SHIFT, False)
                if hot is not None:
                    want_used, want_hot = idx + 1, hot
                    break
            used, fired = b.process_run(ppn, reads)
            assert (used, fired) == (want_used, want_hot is not None)
        assert a.accesses == b.accesses
        assert a.dropped_after_send == b.dropped_after_send
        assert a.hot_pages == b.hot_pages
        assert a._table.hits == b._table.hits
        assert a._table.misses == b._table.misses

    def test_multichannel_process_batch_equivalence(self):
        from repro.hopp.hpd import MultiChannelHpd

        rng = random.Random(13)
        a = MultiChannelHpd(channels=2)
        b = MultiChannelHpd(channels=2)
        for _ in range(200):
            paddrs = [rng.randrange(30) << PAGE_SHIFT for _ in range(rng.randrange(1, 12))]
            writes = [rng.random() < 0.2 for _ in paddrs]
            want_used, want_hot = len(paddrs), None
            for idx, (paddr, w) in enumerate(zip(paddrs, writes)):
                hot = a.process(paddr, w)
                if hot is not None:
                    want_used, want_hot = idx + 1, hot
                    break
            assert b.process_batch(paddrs, writes) == (want_used, want_hot)

    def test_stt_feed_batch_equivalence(self):
        from repro.hopp.stt import StreamTrainingTable

        rng = random.Random(17)
        a = StreamTrainingTable()
        b = StreamTrainingTable()
        pages = [
            (rng.randrange(3), rng.randrange(200))
            for _ in range(600)
        ]
        want = [
            obs for obs in (a.feed(pid, vpn, 5.0) for pid, vpn in pages)
            if obs is not None
        ]
        got = b.feed_batch(pages, 5.0)
        assert [(o.pid, o.vpn, o.stride, o.vpn_history, o.stride_history)
                for o in got] == \
            [(o.pid, o.vpn, o.stride, o.vpn_history, o.stride_history)
             for o in want]
        assert len(a) == len(b)

    def test_ssp_counts_equivalence(self):
        from repro.hopp import ssp

        rng = random.Random(19)
        for _ in range(500):
            strides = [rng.choice([-3, -1, 0, 1, 2, 64]) for _ in
                       range(rng.randrange(1, 15))]
            counts = {}
            for s in strides:
                if s:
                    counts[s] = counts.get(s, 0) + 1
            for min_count in (1, 2, len(strides) // 2):
                assert ssp.dominant_stride_from_counts(
                    counts, strides, min_count
                ) == ssp.dominant_stride(strides, min_count)


class TestFastPathGating:
    def test_sanitizer_forces_slow_loop(self):
        # With the invariant sanitizer armed the dispatcher must take
        # the per-access loop (the sanitizer sweeps every N accesses,
        # so the trace must be long enough to cross that interval).
        workload = build("stream-simple", seed=3, npages=256, passes=10)
        trace = list(workload.trace())
        assert len(trace) >= 2000
        a = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                         check_invariants=True)
        a.run(trace)
        b = make_machine(workload, "hopp", 0.5, quiet_fabric(3),
                         check_invariants=True)
        b.run(trace, use_fast_path=False)
        assert collect(a, "hopp", "s").to_dict(full=True) == \
            collect(b, "hopp", "s").to_dict(full=True)
        assert a.sanitizer.checks_run > 0
