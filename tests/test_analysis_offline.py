"""Tests for the offline prefetch study (replaying HMTT traces)."""

import pytest

from repro.analysis.offline import replay_study
from repro.common.types import TraceRecord
from repro.hopp.three_tier import TierConfig


def trace_of_pages(pages, blocks=8):
    records = []
    seq = 0
    for page in pages:
        for block in range(blocks):
            records.append(
                TraceRecord(
                    seq=seq & 0xFF,
                    timestamp=0,
                    is_write=False,
                    paddr=(page << 12) | (block << 6),
                )
            )
            seq += 1
    return records


class TestReplayStudy:
    def test_sequential_trace_predicts_well(self):
        study = replay_study(trace_of_pages(range(1000, 1400)), offset=4)
        assert study.hot_pages == 400
        assert study.predictions > 200
        assert study.prediction_accuracy > 0.95
        assert study.decisions_by_tier.get("ssp", 0) > 0

    def test_random_trace_mostly_abstains(self):
        import random

        rng = random.Random(9)
        pages = [rng.randrange(100_000) for _ in range(400)]
        study = replay_study(trace_of_pages(pages), offset=4)
        assert study.predictions < study.hot_pages * 0.2

    def test_ladder_trace_uses_lsp(self):
        pages = []
        for j in range(120):
            for off in (0, 9, 22, 43):
                pages.append(5000 + off + 2 * j)
        study = replay_study(trace_of_pages(pages), offset=1)
        assert study.decisions_by_tier.get("lsp", 0) > 0
        assert study.prediction_accuracy > 0.8

    def test_tier_config_respected(self):
        pages = []
        for j in range(120):
            for off in (0, 9, 22, 43):
                pages.append(5000 + off + 2 * j)
        study = replay_study(
            trace_of_pages(pages), tiers=TierConfig.only("ssp"), offset=1
        )
        assert "lsp" not in study.decisions_by_tier

    def test_writes_not_counted_as_reads(self):
        records = [
            TraceRecord(seq=i, timestamp=0, is_write=True, paddr=i << 12)
            for i in range(100)
        ]
        study = replay_study(records)
        assert study.hot_pages == 0

    def test_empty_trace(self):
        study = replay_study([])
        assert study.accesses == 0
        assert study.prediction_accuracy == 0.0

    def test_lookahead_bounds_usefulness(self):
        # Page 2000 is accessed far in the future: useful only with a
        # large lookahead.
        pages = list(range(1000, 1100)) + list(range(50_000, 50_200)) + [1104]
        near = replay_study(trace_of_pages(pages), offset=4, lookahead=100)
        far = replay_study(trace_of_pages(pages), offset=4, lookahead=10**6)
        assert far.useful_predictions >= near.useful_predictions
