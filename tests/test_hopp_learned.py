"""Tests for the learned stride-context prefetcher."""

import pytest

from repro.hopp.learned import LearnedStridePredictor, LearnedTrainer
from tests.conftest import make_observation, quiet_fabric


def feed_stream(predictor, vpns):
    decision = None
    for end in range(4, len(vpns) + 1):
        window = vpns[max(0, end - 16) : end]
        if len(window) < 4:
            continue
        decision = predictor.train(make_observation(window))
    return decision


class TestLearnedStridePredictor:
    def test_learns_constant_stride(self):
        predictor = LearnedStridePredictor(context_len=2)
        decision = feed_stream(predictor, [100 + 3 * i for i in range(30)])
        assert decision is not None
        assert decision.per_offset_stride == 3
        assert decision.tier == "learned"

    def test_learns_repeating_pattern(self):
        # Ladder-like strides: 5, 1, 5, 1, ... context (5, 1) -> 5 etc.
        vpns = [0]
        for i in range(40):
            vpns.append(vpns[-1] + (5 if i % 2 == 0 else 1))
        predictor = LearnedStridePredictor(context_len=2)
        decision = feed_stream(predictor, vpns)
        assert decision is not None
        # The last two strides determine the next one exactly.
        expected = 5 if (len(vpns) - 1) % 2 == 0 else 1
        assert decision.per_offset_stride == expected

    def test_abstains_without_confidence(self):
        import random

        rng = random.Random(1)
        vpns = [1000]
        for _ in range(60):
            vpns.append(vpns[-1] + rng.choice([3, -7, 11, 19, -23]))
        predictor = LearnedStridePredictor(context_len=2, confidence=0.9)
        feed_stream(predictor, vpns)
        assert predictor.abstentions > 0

    def test_adapts_to_phase_change(self):
        predictor = LearnedStridePredictor(context_len=1, decay=0.5)
        feed_stream(predictor, [100 + i for i in range(30)])
        decision = feed_stream(predictor, [5000 + 4 * i for i in range(30)])
        assert decision is not None
        assert decision.per_offset_stride == 4

    def test_table_capacity_bounded(self):
        predictor = LearnedStridePredictor(context_len=2, max_contexts=8)
        import random

        rng = random.Random(2)
        vpns = [0]
        for _ in range(300):
            vpns.append(vpns[-1] + rng.randrange(1, 50))
        feed_stream(predictor, vpns)
        assert predictor.table_size <= 8

    def test_never_predicts_zero_stride(self):
        predictor = LearnedStridePredictor(context_len=1, confidence=0.1)
        # Alternating +1/-1 netting to repeated pages.
        vpns = [100, 101, 100, 101, 100, 101, 100, 101]
        decision = feed_stream(predictor, vpns)
        if decision is not None:
            assert decision.per_offset_stride != 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LearnedStridePredictor(context_len=0)
        with pytest.raises(ValueError):
            LearnedStridePredictor(confidence=0.0)


class TestLearnedTrainer:
    def test_trainer_interface(self):
        trainer = LearnedTrainer()
        obs = make_observation([100 + i for i in range(16)])
        for _ in range(4):
            trainer.train(obs)
        assert (
            trainer.decisions_by_tier["learned"] + trainer.no_decision == 4
        )


class TestHoppLearnedSystem:
    def test_learned_system_runs_and_prefetches(self):
        import repro

        wl = repro.workloads.build("stream-simple", npages=600, passes=2)
        result = repro.run(wl, "hopp-learned", 0.5, quiet_fabric())
        assert result.issued_by_tier.get("learned", 0) > 0
        assert result.accuracy > 0.9

    def test_learned_close_to_three_tier_on_simple_streams(self):
        import repro

        wl = repro.workloads.build("stream-simple", npages=600, passes=2)
        tiered = repro.run(wl, "hopp", 0.5, quiet_fabric())
        learned = repro.run(wl, "hopp-learned", 0.5, quiet_fabric())
        assert learned.completion_time_us <= tiered.completion_time_us * 1.1

    def test_unknown_trainer_rejected(self):
        from repro.hopp.system import HoppConfig, HoppDataPlane

        with pytest.raises(ValueError, match="unknown trainer"):
            HoppDataPlane(backend=None, config=HoppConfig(trainer="bogus"))
