"""Unit + property tests for the set-associative table and LRU dict."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.assoc import LruDict, SetAssociativeTable


class TestSetAssociativeTable:
    def test_insert_and_lookup(self):
        table = SetAssociativeTable(nsets=2, nways=2)
        table.insert(4, "a")
        assert table.lookup(4) == "a"
        assert table.lookup(6) is None

    def test_miss_then_hit_statistics(self):
        table = SetAssociativeTable(nsets=2, nways=2)
        assert table.lookup(1) is None
        table.insert(1, "x")
        assert table.lookup(1) == "x"
        assert table.hits == 1
        assert table.misses == 1
        assert table.hit_rate == 0.5

    def test_eviction_is_lru_within_set(self):
        table = SetAssociativeTable(nsets=1, nways=2)
        table.insert(1, "a")
        table.insert(2, "b")
        table.lookup(1)  # refresh 1; victim should be 2
        victim = table.insert(3, "c")
        assert victim == (2, "b")
        assert 1 in table
        assert 3 in table

    def test_insert_existing_key_updates_without_eviction(self):
        table = SetAssociativeTable(nsets=1, nways=2)
        table.insert(1, "a")
        table.insert(2, "b")
        assert table.insert(1, "a2") is None
        assert table.peek(1) == "a2"
        assert len(table) == 2

    def test_sets_are_independent(self):
        table = SetAssociativeTable(nsets=2, nways=1)
        table.insert(0, "even")
        table.insert(1, "odd")
        # Filling set 0 again evicts only from set 0.
        victim = table.insert(2, "even2")
        assert victim == (0, "even")
        assert table.peek(1) == "odd"

    def test_peek_does_not_disturb_lru_or_stats(self):
        table = SetAssociativeTable(nsets=1, nways=2)
        table.insert(1, "a")
        table.insert(2, "b")
        table.peek(1)
        assert table.hits == 0
        victim = table.insert(3, "c")
        assert victim[0] == 1  # peek did not refresh key 1

    def test_lookup_without_touch(self):
        table = SetAssociativeTable(nsets=1, nways=2)
        table.insert(1, "a")
        table.insert(2, "b")
        table.lookup(1, touch=False)
        victim = table.insert(3, "c")
        assert victim[0] == 1

    def test_remove(self):
        table = SetAssociativeTable(nsets=1, nways=4)
        table.insert(7, "x")
        assert table.remove(7) == "x"
        assert table.remove(7) is None
        assert 7 not in table

    def test_touch_refreshes(self):
        table = SetAssociativeTable(nsets=1, nways=2)
        table.insert(1, "a")
        table.insert(2, "b")
        assert table.touch(1)
        assert not table.touch(99)
        victim = table.insert(3, "c")
        assert victim[0] == 2

    def test_custom_index_fn(self):
        table = SetAssociativeTable(nsets=4, nways=1, index_fn=lambda k: (k >> 4) % 4)
        assert table.set_index(0x10) == 1
        assert table.set_index(0x0F) == 0

    def test_capacity_and_len(self):
        table = SetAssociativeTable(nsets=4, nways=16)
        assert table.capacity == 64
        for key in range(10):
            table.insert(key, key)
        assert len(table) == 10

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(nsets=0, nways=4)
        with pytest.raises(ValueError):
            SetAssociativeTable(nsets=4, nways=0)

    def test_clear_resets_everything(self):
        table = SetAssociativeTable(nsets=2, nways=2)
        table.insert(1, "a")
        table.lookup(1)
        table.clear()
        assert len(table) == 0
        assert table.hits == 0 and table.misses == 0

    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_lru_model(self, keys):
        """The table must behave exactly like per-set reference LRU lists."""
        nsets, nways = 4, 3
        table = SetAssociativeTable(nsets=nsets, nways=nways)
        reference = [[] for _ in range(nsets)]  # most recent last
        for key in keys:
            set_idx = key % nsets
            ref_set = reference[set_idx]
            present = table.lookup(key) is not None
            assert present == (key in ref_set)
            if present:
                ref_set.remove(key)
                ref_set.append(key)
            else:
                table.insert(key, key)
                if len(ref_set) >= nways:
                    ref_set.pop(0)
                ref_set.append(key)
        for set_idx, ref_set in enumerate(reference):
            for key in ref_set:
                assert table.peek(key) == key

    @given(st.lists(st.integers(0, 100), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_capacity(self, keys):
        table = SetAssociativeTable(nsets=2, nways=4)
        for key in keys:
            table.insert(key, None)
            assert len(table) <= table.capacity


class TestLruDict:
    def test_put_get(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("missing") is None
        assert lru.get("missing", 42) == 42

    def test_eviction_order(self):
        lru = LruDict(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")
        victim = lru.put("c", 3)
        assert victim == ("b", 2)

    def test_update_existing_no_eviction(self):
        lru = LruDict(capacity=1)
        lru.put("a", 1)
        assert lru.put("a", 2) is None
        assert lru.get("a") == 2

    def test_pop_and_lru_key(self):
        lru = LruDict(capacity=3)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.lru_key() == "a"
        assert lru.pop("a") == 1
        assert lru.lru_key() == "b"
        assert lru.pop("zz") is None

    def test_empty_lru_key_is_none(self):
        assert LruDict(capacity=1).lru_key() is None

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruDict(capacity=0)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers()), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant(self, items):
        lru = LruDict(capacity=5)
        for key, value in items:
            lru.put(key, value)
            assert len(lru) <= 5
