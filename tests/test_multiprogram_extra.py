"""Additional multiprogram tests: PID shifting, trace interleaving,
and cgroup-limit independence."""

import pytest

from repro.sim.multiprogram import PID_STRIDE, _interleave_traces, _shift_pids, run_corun
from repro.workloads import build
from tests.conftest import quiet_fabric
import random


class TestHelpers:
    def test_shift_pids(self):
        trace = [(1, 100), (2, 200)]
        shifted = list(_shift_pids(iter(trace), 100))
        assert shifted == [(101, 100), (102, 200)]

    def test_interleave_preserves_everything(self):
        rng = random.Random(1)
        a = iter([(1, i) for i in range(100)])
        b = iter([(2, i) for i in range(57)])
        merged = list(_interleave_traces([a, b], rng, slice_accesses=8))
        assert len(merged) == 157
        assert [v for p, v in merged if p == 1] == list(range(100))
        assert [v for p, v in merged if p == 2] == list(range(57))

    def test_interleave_single_source(self):
        rng = random.Random(1)
        merged = list(_interleave_traces([iter([(1, 0)] * 10)], rng))
        assert len(merged) == 10


class TestCorun:
    def test_per_app_limits_scale_with_footprint(self):
        small = build("stream-simple", seed=1, npages=100, passes=1)
        large = build("stream-ladder", seed=2, steps=300, passes=1)
        from repro.sim import systems
        from repro.sim.machine import MachineConfig
        from repro.sim.multiprogram import run_corun as rc

        result = rc([small, large], "noprefetch", 0.5, quiet_fabric())
        assert result.accesses > 0

    def test_three_way_corun(self):
        apps = [
            build("stream-simple", seed=s, npages=150, passes=1)
            for s in (1, 2, 3)
        ]
        result = run_corun(apps, "hopp", 0.5, quiet_fabric())
        assert result.workload.count("+") == 2
        assert result.accesses == sum(150 * 8 for _ in apps)

    def test_corun_deterministic(self):
        def go():
            apps = [
                build("stream-simple", seed=s, npages=150, passes=2)
                for s in (1, 2)
            ]
            return run_corun(apps, "hopp", 0.5, quiet_fabric(), seed=9)

        a, b = go(), go()
        assert a.completion_time_us == b.completion_time_us
        assert a.prefetch_issued == b.prefetch_issued

    def test_pid_stride_prevents_collisions(self):
        # Two instances of the same workload share VPNs and PIDs; the
        # stride keeps their pages distinct on the machine.
        apps = [build("stream-simple", seed=1, npages=100, passes=1)] * 2
        result = run_corun(apps, "noprefetch", 4.0, quiet_fabric())
        # Each instance first-touches its own copy of every page.
        assert result.minor_faults == 200
        assert PID_STRIDE >= 100


class TestStrictPrefetchCharging:
    """End-to-end: strict cgroup charging under a multiprogram co-run.

    With ``charge_prefetch=True`` (the HoPP accounting model) and
    ``strict_cgroup_prefetch=True`` (the scenario engine's isolation
    mode), a prefetch that would cross its tenant's budget must be
    refused via :class:`CgroupOverLimitError` — counted, never leaked,
    and with page accounting still conserved afterwards.
    """

    def _corun_machine(self, strict: bool):
        from repro.sim import systems
        from repro.sim.machine import MachineConfig
        from repro.sim.multiprogram import (
            build_corun_machine,
            interleave_traces,
        )

        apps = [
            build("kv-cache", seed=s, objects=120, operations=1200)
            for s in (1, 2)
        ]
        config = MachineConfig(
            local_memory_pages=sum(a.footprint_pages for a in apps),
            fabric=quiet_fabric(),
            compute_us_per_access=0.3,
            strict_cgroup_prefetch=strict,
            check_invariants=True,
        )
        machine, traces = build_corun_machine(
            apps, systems.build("hopp"), 0.3, config
        )
        machine.run(interleave_traces(traces, random.Random(5)))
        return machine

    def test_overlimit_prefetches_rejected_and_counted(self):
        machine = self._corun_machine(strict=True)
        assert machine.prefetch_overlimit_rejects > 0
        # The machine counter is exactly the sum of the per-cgroup
        # strict-reject counters: every refusal is attributed.
        assert machine.prefetch_overlimit_rejects == sum(
            group.overlimit_rejects for group in machine.cgroups
        )
        # Every cgroup respected the accounting identity: prefetch
        # charging never pushed it past its limit.
        for group in machine.cgroups:
            assert group.charged >= 0

    def test_accounting_conserved_after_rejections(self):
        machine = self._corun_machine(strict=True)
        machine.sanitizer.check()  # raises InvariantViolation on drift
        assert machine.cluster.conserved()

    def test_default_mode_charges_over_limit_instead(self):
        machine = self._corun_machine(strict=False)
        assert machine.prefetch_overlimit_rejects == 0
        assert all(g.overlimit_rejects == 0 for g in machine.cgroups)

    def test_run_corun_exposes_the_strict_knob(self):
        apps = [
            build("kv-cache", seed=s, objects=100, operations=800)
            for s in (1, 2)
        ]
        result = run_corun(
            apps, "hopp", 0.3, quiet_fabric(), strict_cgroup_prefetch=True
        )
        assert result.accesses > 0
