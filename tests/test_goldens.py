"""Golden-result pins: the simulator's exact outputs, frozen on disk.

Performance work on the hot path (PR: parallel exec engine) is only
legal if it is bit-invisible; these cases — spanning every system
family, a chaos fault plan, and a replicated multi-node cluster — were
captured *before* that work and every RunResult must still match them
byte for byte.  A future PR that intentionally changes simulator
semantics should regenerate tests/data/goldens_v1.json (see
``_CASES`` below for the recipe) and bump the exec-cache
``SCHEMA_VERSION`` in the same commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.workloads import build

GOLDEN_PATH = Path(__file__).parent / "data" / "goldens_v1.json"
SEED = 7

#: (workload, system, fraction, fault_plan, cluster) — keyed in the
#: golden file as "workload|system|fraction|{chaos|None}|nodes".
_CASES = [
    ("stream-simple", "hopp", 0.5, None, None),
    ("stream-simple", "fastswap", 0.5, None, None),
    ("stream-ladder", "leap", 0.5, None, None),
    ("omp-kmeans", "hopp", 0.5, None, None),
    ("omp-kmeans", "noprefetch", 4.0, None, None),
    ("quicksort", "hopp-evict", 0.25, None, None),
    ("kv-cache", "hopp", 0.5, FaultPlan.chaos(SEED), None),
    (
        "stream-simple", "hopp", 0.5, None,
        ClusterConfig(nodes=3, placement="affinity", replication=2),
    ),
]


def _key(name, system, fraction, plan, cluster):
    fault = "chaos" if plan is not None else None
    nodes = cluster.nodes if cluster is not None else 1
    return f"{name}|{system}|{fraction}|{fault}|{nodes}"


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize(
    "case", _CASES, ids=[_key(*case) for case in _CASES]
)
def test_result_matches_golden(case, goldens):
    name, system, fraction, plan, cluster = case
    workload = build(name, seed=SEED)
    result = runner.run(
        workload, system, fraction, FabricConfig(seed=SEED), plan, cluster
    )
    assert result.to_dict() == goldens[_key(*case)]
