"""Tests for the cache model and memory controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.cache import Cache, CacheHierarchy
from repro.memsim.controller import MemoryController


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache(size_kb=4, ways=2)
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit
        # Same cacheline, different byte.
        assert cache.access(0x1030).hit

    def test_different_lines_miss(self):
        cache = Cache(size_kb=4, ways=2)
        cache.access(0x0)
        assert not cache.access(0x40).hit

    def test_writeback_of_dirty_victim(self):
        # 2 sets x 1 way: lines 0 and 2 collide in set 0.
        cache = Cache(size_kb=4, ways=1)
        nsets = cache.nsets
        cache.access(0, is_write=True)
        conflicting = nsets << 6  # same set, different tag
        result = cache.access(conflicting)
        assert not result.hit
        assert result.writeback_block == 0

    def test_clean_victim_no_writeback(self):
        cache = Cache(size_kb=4, ways=1)
        nsets = cache.nsets
        cache.access(0, is_write=False)
        result = cache.access(nsets << 6)
        assert result.writeback_block is None

    def test_invalidate_page(self):
        cache = Cache(size_kb=64, ways=4)
        for block in range(64):
            cache.access((7 << 12) | (block << 6))
        dropped = cache.invalidate_page(7)
        assert dropped == 64
        assert not cache.access(7 << 12).hit

    def test_size_accounting(self):
        cache = Cache(size_kb=32, ways=8)
        assert cache.size_bytes == 32 * 1024

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(size_kb=1, ways=100)

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache = Cache(size_kb=4, ways=2)
        for addr in addrs:
            cache.access(addr)
        assert cache.hits + cache.misses == len(addrs)

    @given(st.integers(0, 1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_always_hits(self, addr):
        cache = Cache(size_kb=4, ways=2)
        cache.access(addr)
        assert cache.access(addr).hit


class TestCacheHierarchy:
    def test_default_levels(self):
        hierarchy = CacheHierarchy()
        assert [c.name for c in hierarchy.levels] == ["L1", "L2", "LLC"]
        assert hierarchy.llc.name == "LLC"

    def test_first_access_misses_all_levels(self):
        hierarchy = CacheHierarchy()
        assert hierarchy.access(0x1234)  # reaches the MC
        assert not hierarchy.access(0x1234)  # L1 hit

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(levels=[])

    def test_working_set_filtering(self):
        """A small working set only misses once per line (LLC filters it
        from the MC — the reason HoPP taps the MC, Section II-D)."""
        hierarchy = CacheHierarchy(levels=[Cache(size_kb=64, ways=4, name="LLC")])
        lines = [i << 6 for i in range(100)]
        misses = sum(hierarchy.access(a) for a in lines)
        assert misses == 100
        misses_second_pass = sum(hierarchy.access(a) for a in lines)
        assert misses_second_pass == 0


class TestMemoryController:
    def test_counts_and_bytes(self):
        mc = MemoryController()
        mc.access(0.0, 0x40, is_write=False)
        mc.access(1.0, 0x80, is_write=True)
        assert mc.reads == 1
        assert mc.writes == 1
        assert mc.accesses == 2
        assert mc.bytes_transferred == 128

    def test_taps_receive_every_access(self):
        mc = MemoryController()
        seen = []
        mc.add_tap(lambda ts, paddr, w: seen.append((ts, paddr, w)))
        mc.access(5.0, 0x1000, False)
        assert seen == [(5.0, 0x1000, False)]

    def test_interleaved_channel_mapping(self):
        mc = MemoryController(channels=2, interleaved=True)
        assert mc.channel_of(0x00) == 0
        assert mc.channel_of(0x40) == 1
        assert mc.channel_of(0x80) == 0

    def test_non_interleaved_channel_mapping(self):
        mc = MemoryController(channels=2, interleaved=False)
        # Whole pages map to one channel.
        assert mc.channel_of(0x0000) == mc.channel_of(0x0FC0)
        assert mc.channel_of(0x0000) != mc.channel_of(0x1000)

    def test_single_channel(self):
        mc = MemoryController(channels=1)
        assert mc.channel_of(0xDEADBEEF) == 0

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            MemoryController(channels=0)

    def test_reset_stats(self):
        mc = MemoryController()
        mc.access(0.0, 0x40)
        mc.reset_stats()
        assert mc.accesses == 0 and mc.bytes_transferred == 0
