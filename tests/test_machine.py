"""Tests for the full-system machine: page lifecycle, fault costs,
reclaim, prefetch paths, and conservation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import NoPrefetch
from repro.baselines.depthn import DepthNPrefetcher
from repro.baselines.fastswap import FastswapPrefetcher
from repro.common.constants import (
    T_DRAM_HIT_US,
    T_PREFETCH_HIT_US,
)
from repro.kernel.page_table import PteState
from repro.sim.machine import Machine, MachineConfig
from tests.conftest import quiet_fabric, touch_pages


def make_machine(limit=64, prefetcher=None, **kwargs) -> Machine:
    config = MachineConfig(
        local_memory_pages=limit,
        fabric=quiet_fabric(),
        watermark_slack=4,
        **kwargs,
    )
    machine = Machine(config, fault_prefetcher=prefetcher)
    machine.register_process(1)
    machine.add_vma(1, 0, 1 << 20, "heap")
    return machine


class TestFirstTouch:
    def test_minor_fault_maps_page(self):
        machine = make_machine()
        cost = machine.access(1, 0)
        assert cost == pytest.approx(machine.config.minor_fault_cost_us)
        assert machine.minor_faults == 1
        assert machine.page_state(1, 0) == PteState.PRESENT

    def test_second_access_is_dram_hit(self):
        machine = make_machine()
        machine.access(1, 0)
        cost = machine.access(1, 0)
        assert cost == pytest.approx(T_DRAM_HIT_US)


class TestEvictionAndMajorFault:
    def test_over_limit_evicts_to_remote(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        assert machine.page_state(1, 0) == PteState.REMOTE
        assert machine.remote.pages_stored > 0
        assert machine.fabric.writes > 0

    def test_major_fault_cost_includes_rdma(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        cost = machine.access(1, 0)  # page 0 is remote now
        # context + walk + swapcache + 4.0 rdma + pte set = 6.3.
        assert cost == pytest.approx(6.3)
        assert machine.remote_demand_reads == 1

    def test_faulted_page_mapped_and_slot_released(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        machine.access(1, 0)
        assert machine.page_state(1, 0) == PteState.PRESENT
        pte = machine.page_table(1).peek(0)
        assert pte.swap_slot == -1
        assert machine.swap_space.slots_in_use < 16

    def test_residency_bounded_by_limit(self):
        machine = make_machine(limit=16)
        touch_pages(machine, 1, range(100))
        resident = machine.resident_pages("default")
        assert resident <= 16

    def test_lru_eviction_order_is_coldest_first(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(8))
        machine.access(1, 0)  # refresh page 0
        touch_pages(machine, 1, range(100, 104))  # force evictions
        # Page 0 was MRU: it should still be present; page 1 was coldest.
        assert machine.page_state(1, 1) == PteState.REMOTE


class TestPrefetchPaths:
    def test_prefetch_lands_in_swapcache(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))  # pages 0..7 now remote
        arrival = machine.prefetch_page(1, 0, machine.now_us, False, "test")
        assert arrival is not None
        assert machine.page_state(1, 0) == PteState.INFLIGHT
        # Move time past arrival with an unrelated access.
        machine.now_us = arrival + 1.0
        machine.access(1, 200 << 12)
        assert machine.page_state(1, 0) == PteState.SWAPCACHE

    def test_swapcache_hit_cost_and_accounting(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        arrival = machine.prefetch_page(1, 0, machine.now_us, False, "test")
        machine.now_us = arrival + 1.0
        machine.access(1, 200 << 12)
        cost = machine.access(1, 0)
        assert cost == pytest.approx(T_PREFETCH_HIT_US)
        assert machine.prefetch_hit_swapcache == 1
        assert machine.hits_by_tier == {"test": 1}
        assert machine.page_state(1, 0) == PteState.PRESENT

    def test_injected_prefetch_becomes_dram_hit(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        arrival = machine.prefetch_page(1, 0, machine.now_us, True, "test")
        machine.now_us = arrival + 1.0
        machine.access(1, 200 << 12)  # processes the arrival
        assert machine.page_state(1, 0) == PteState.PRESENT
        cost = machine.access(1, 0)
        assert cost == pytest.approx(T_DRAM_HIT_US)
        assert machine.prefetch_hit_dram == 1

    def test_fault_on_inflight_waits_for_arrival(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        start = machine.now_us
        machine.prefetch_page(1, 0, start, False, "test")
        cost = machine.access(1, 0)  # immediately touch the inflight page
        assert cost == pytest.approx(4.0 + T_PREFETCH_HIT_US, abs=0.7)
        assert machine.prefetch_hit_inflight == 1

    def test_prefetch_rejected_for_local_page(self):
        machine = make_machine()
        machine.access(1, 0)
        assert machine.prefetch_page(1, 0, 0.0, True, "t") is None

    def test_prefetch_rejected_for_untouched_page(self):
        machine = make_machine()
        assert machine.prefetch_page(1, 12345, 0.0, True, "t") is None

    def test_prefetch_rejected_for_unknown_pid(self):
        machine = make_machine()
        assert machine.prefetch_page(99, 0, 0.0, True, "t") is None

    def test_duplicate_prefetch_rejected_while_inflight(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        assert machine.prefetch_page(1, 0, machine.now_us, False, "t") is not None
        assert machine.prefetch_page(1, 0, machine.now_us, False, "t") is None

    def test_wasted_prefetch_counted_on_eviction(self):
        machine = make_machine(limit=8)
        touch_pages(machine, 1, range(16))
        machine.prefetch_page(1, 0, machine.now_us, False, "test")
        # Land it, then thrash the cgroup so it's evicted unused.
        machine.now_us += 100.0
        touch_pages(machine, 1, range(300, 340))
        assert machine.prefetch_wasted == 1
        assert machine.page_state(1, 0) == PteState.REMOTE


class TestFaultTimePrefetcherIntegration:
    def test_fastswap_prefetches_on_major_fault(self):
        machine = make_machine(limit=8, prefetcher=FastswapPrefetcher())
        touch_pages(machine, 1, range(16))
        machine.access(1, 0)  # major fault -> readahead fires
        assert machine.prefetch_issued > 0
        assert "fastswap" in machine.issued_by_tier

    def test_depthn_injects(self):
        machine = make_machine(limit=8, prefetcher=DepthNPrefetcher(4))
        touch_pages(machine, 1, range(16))
        machine.access(1, 2 << 12)  # fault on remote page 2
        machine.now_us += 100.0
        machine.access(1, 200 << 12)  # process arrivals
        # Pages 3..6 were remote and injected.
        assert machine.page_state(1, 3) == PteState.PRESENT

    def test_prefetch_issue_cost_on_critical_path(self):
        plain = make_machine(limit=8, prefetcher=NoPrefetch())
        with_pf = make_machine(limit=8, prefetcher=DepthNPrefetcher(8))
        for machine in (plain, with_pf):
            touch_pages(machine, 1, range(16))
        base = plain.access(1, 0)
        loaded = with_pf.access(1, 0)
        assert loaded > base  # issuing the window costs fault time


class TestConservation:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_access_classification_is_total(self, vpns):
        """Every access is exactly one of: DRAM hit, minor fault,
        prefetch hit, or remote demand read."""
        machine = make_machine(limit=10, prefetcher=FastswapPrefetcher())
        touch_pages(machine, 1, vpns)
        dram_hits = machine.accesses - (
            machine.minor_faults
            + machine.remote_demand_reads
            + machine.prefetch_hit_swapcache
            + machine.prefetch_hit_inflight
        )
        assert dram_hits >= 0
        assert machine.accesses == len(vpns)

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_frames_match_residency(self, vpns):
        machine = make_machine(limit=12, prefetcher=FastswapPrefetcher())
        touch_pages(machine, 1, vpns)
        assert machine.frames.used == machine.resident_pages()
        assert machine.prefetch_issued >= machine.prefetch_wasted

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_clock_monotone_and_positive_costs(self, vpns):
        machine = make_machine(limit=12)
        last = 0.0
        for vpn in vpns:
            machine.access(1, vpn << 12)
            assert machine.now_us >= last
            last = machine.now_us


class TestMultiProcess:
    def test_separate_cgroups_isolated(self):
        config = MachineConfig(local_memory_pages=8, fabric=quiet_fabric())
        machine = Machine(config)
        machine.register_process(1, cgroup_name="a", limit_pages=8)
        machine.register_process(2, cgroup_name="b", limit_pages=8)
        touch_pages(machine, 1, range(32))
        # Process 2's pages are untouched by process 1's thrashing.
        touch_pages(machine, 2, range(1000, 1004))
        assert machine.page_state(2, 1000) == PteState.PRESENT
        assert machine.resident_pages("a") <= 8

    def test_duplicate_pid_rejected(self):
        machine = make_machine()
        with pytest.raises(ValueError):
            machine.register_process(1)

    def test_same_vpn_different_pids_distinct(self):
        config = MachineConfig(local_memory_pages=64, fabric=quiet_fabric())
        machine = Machine(config)
        machine.register_process(1, cgroup_name="a")
        machine.register_process(2, cgroup_name="b")
        machine.access(1, 0)
        assert machine.page_state(1, 0) == PteState.PRESENT
        assert machine.page_state(2, 0) == PteState.UNTOUCHED
