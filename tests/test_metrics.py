"""Unit tests for RunResult metric math and export."""

import json

import pytest

from repro.common.stats import Histogram
from repro.sim.metrics import RunResult


def result(**overrides) -> RunResult:
    base = dict(system="test", workload="wl")
    base.update(overrides)
    return RunResult(**base)


class TestPaperMetrics:
    def test_accuracy(self):
        r = result(prefetch_issued=100, prefetch_hit_dram=60,
                   prefetch_hit_swapcache=20, prefetch_hit_inflight=10)
        assert r.prefetch_hits == 90
        assert r.accuracy == pytest.approx(0.9)

    def test_accuracy_no_prefetches(self):
        assert result().accuracy == 0.0

    def test_coverage_definition(self):
        """coverage = hits / (remote demand requests + hits), VI-A."""
        r = result(remote_demand_reads=10, prefetch_hit_dram=90)
        assert r.coverage == pytest.approx(0.9)

    def test_dram_hit_coverage_subset(self):
        r = result(remote_demand_reads=10, prefetch_hit_dram=45,
                   prefetch_hit_swapcache=45)
        assert r.dram_hit_coverage == pytest.approx(0.45)
        assert r.coverage == pytest.approx(0.9)

    def test_page_faults_counts_swapcache_hits(self):
        """Swapcache/inflight prefetch hits still fault (II-C); DRAM
        hits from injected PTEs do not."""
        r = result(remote_demand_reads=5, prefetch_hit_swapcache=3,
                   prefetch_hit_inflight=2, prefetch_hit_dram=100)
        assert r.page_faults == 10

    def test_normalized_performance(self):
        r = result(completion_time_us=200.0)
        assert r.normalized_performance(100.0) == pytest.approx(0.5)
        assert result(completion_time_us=0.0).normalized_performance(100.0) == 0.0

    def test_speedup_vs(self):
        fast = result(completion_time_us=100.0)
        slow = result(completion_time_us=150.0)
        assert fast.speedup_vs(slow) == pytest.approx(1 - 100 / 150)
        assert slow.speedup_vs(fast) < 0

    def test_tier_metrics(self):
        r = result(
            issued_by_tier={"ssp": 50, "lsp": 10},
            hits_by_tier={"ssp": 45, "lsp": 5},
            remote_demand_reads=10,
            prefetch_hit_dram=50,
        )
        assert r.tier_accuracy("ssp") == pytest.approx(0.9)
        assert r.tier_accuracy("lsp") == pytest.approx(0.5)
        assert r.tier_accuracy("rsp") == 0.0
        assert r.tier_coverage("ssp") == pytest.approx(45 / 60)


class TestExport:
    def test_to_dict_json_serializable(self):
        r = result(
            completion_time_us=123.4,
            issued_by_tier={"ssp": 5},
            hits_by_tier={"ssp": 4},
            prefetch_issued=5,
            prefetch_hit_dram=4,
        )
        payload = r.to_dict()
        encoded = json.dumps(payload)
        decoded = json.loads(encoded)
        assert decoded["accuracy"] == pytest.approx(0.8)
        assert decoded["issued_by_tier"] == {"ssp": 5}
        assert "breakdown_us" in decoded

    def test_to_dict_includes_timeliness_when_present(self):
        hist = Histogram()
        hist.add(50.0)
        r = result(timeliness=hist)
        payload = r.to_dict()
        assert payload["timeliness_us"]["count"] == 1
        assert payload["timeliness_us"]["mean"] == pytest.approx(50.0)

    def test_to_dict_omits_empty_timeliness(self):
        assert "timeliness_us" not in result().to_dict()
