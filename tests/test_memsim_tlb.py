"""Tests for the TLB model."""

import pytest

from repro.memsim.tlb import WALK_COST_US, Tlb


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=16, ways=4)
        assert tlb.translate(1, 0x5000) == WALK_COST_US
        assert tlb.translate(1, 0x5040) == 0.0  # same page
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_distinct_pages_miss(self):
        tlb = Tlb(entries=16, ways=4)
        tlb.translate(1, 0 << 12)
        assert tlb.translate(1, 1 << 12) == WALK_COST_US

    def test_pid_tagging(self):
        tlb = Tlb(entries=16, ways=4)
        tlb.translate(1, 0x5000)
        # Same VPN, different PID: separate entry (ASID semantics).
        assert tlb.translate(2, 0x5000) == WALK_COST_US

    def test_capacity_eviction(self):
        tlb = Tlb(entries=4, ways=1)
        for vpn in range(16):
            tlb.translate(1, vpn << 12)
        # Working set exceeded capacity: revisits miss again.
        assert tlb.translate(1, 0) == WALK_COST_US

    def test_probe_pollutes(self):
        """Section II-D: prefetch-candidate probes evict real entries."""
        tlb = Tlb(entries=4, ways=1)
        for vpn in range(4):
            tlb.translate(1, vpn << 12)
        hits_before = tlb.stats.hits
        # Probe 4 unrelated pages mapping to the same sets.
        for vpn in range(100, 104):
            tlb.probe(1, vpn)
        assert tlb.stats.probe_evictions > 0
        # The application's entries are gone.
        assert tlb.translate(1, 0) == WALK_COST_US
        assert tlb.stats.hits == hits_before

    def test_probe_does_not_touch_stats_hits(self):
        tlb = Tlb(entries=16, ways=4)
        tlb.probe(1, 5)
        assert tlb.stats.hits == 0 and tlb.stats.misses == 0

    def test_invalidate(self):
        tlb = Tlb(entries=16, ways=4)
        tlb.translate(1, 0x5000)
        assert tlb.invalidate(1, 5)
        assert not tlb.invalidate(1, 5)
        assert tlb.translate(1, 0x5000) == WALK_COST_US

    def test_flush(self):
        tlb = Tlb(entries=16, ways=4)
        tlb.translate(1, 0x5000)
        tlb.flush()
        assert (1, 5) not in tlb

    def test_hit_rate(self):
        tlb = Tlb(entries=16, ways=4)
        tlb.translate(1, 0)
        tlb.translate(1, 0)
        tlb.translate(1, 0)
        assert tlb.stats.hit_rate == pytest.approx(2 / 3)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Tlb(entries=5, ways=4)
        with pytest.raises(ValueError):
            Tlb(entries=0, ways=1)
