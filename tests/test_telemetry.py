"""Tests for the telemetry subsystem: event bus, windowed time-series,
and the trace/Prometheus exporters.

The two load-bearing contracts:

* **Null-object when disabled** — a run without telemetry emits no
  events and its RunResult is byte-identical to the same run with
  telemetry enabled, minus the ``telemetry`` blob (probes observe, they
  never perturb).
* **Reconciliation** — every per-epoch counter series sums exactly to
  the matching aggregate RunResult counter.  Telemetry is a
  re-bucketing of the same increments, never a second bookkeeping that
  can drift.
"""

from __future__ import annotations

import functools
import json
import re

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.net.faults import FaultPlan
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.telemetry import (
    Telemetry,
    TelemetryConfig,
    TimeSeriesEngine,
    TraceRecorder,
    chrome_trace,
    prometheus_snapshot,
)
from repro.telemetry.events import (
    EV_DEMAND_FAULT,
    EV_FABRIC_READ,
    EV_FETCH_LATENCY,
    EV_PREFETCH_HIT,
    EV_PREFETCH_ISSUE,
    EVENT_KINDS,
    EventBus,
)
from repro.telemetry.exporters import TRACE_PID
from repro.sim.metrics import RunResult
from repro.workloads import build

SEED = 7

#: name -> (workload, system, fraction, fault_plan, cluster).  Spans the
#: probe surface: prefetch lifecycle (hopp), retry/drop traffic (chaos),
#: and node transitions + repair (crash on a replicated cluster).
_CASES = {
    "prefetch": ("quicksort", "hopp", 0.5, None, None),
    "chaos": ("kv-cache", "hopp", 0.5, FaultPlan.chaos(SEED), None),
    "crash": (
        "quicksort", "noprefetch", 0.5, FaultPlan.crash(SEED),
        ClusterConfig(nodes=3, replication=2),
    ),
}


@functools.lru_cache(maxsize=None)
def run_pair(case: str):
    """(disabled, enabled) RunResults for one case, computed once."""
    workload_name, system, fraction, plan, cluster = _CASES[case]
    outs = []
    for telemetry in (None, TelemetryConfig(epoch_us=500.0, trace=True)):
        outs.append(
            runner.run(
                build(workload_name, seed=SEED),
                system,
                fraction,
                FabricConfig(seed=SEED),
                plan,
                cluster,
                telemetry=telemetry,
            )
        )
    return tuple(outs)


class TestEventBus:
    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.emit("not_a_kind", 0.0)

    def test_counts_and_dispatch_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda kind, ts, fields: seen.append(("a", kind, ts)))
        bus.subscribe(lambda kind, ts, fields: seen.append(("b", kind, ts)))
        bus.emit(EV_DEMAND_FAULT, 1.0, pid=1, vpn=2)
        assert bus.events_emitted == 1
        assert seen == [("a", EV_DEMAND_FAULT, 1.0), ("b", EV_DEMAND_FAULT, 1.0)]

    def test_probe_merges_labels_and_fields_win(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda kind, ts, fields: seen.append(dict(fields)))
        probe = bus.probe(node=3, n=99)
        probe.emit(EV_FABRIC_READ, 2.0, n=4)
        assert seen == [{"node": 3, "n": 4}]

    def test_every_constant_is_in_the_closed_set(self):
        assert EV_DEMAND_FAULT in EVENT_KINDS
        assert len(EVENT_KINDS) == 23


class TestEpochBucketing:
    def test_floor_and_boundary(self):
        engine = TimeSeriesEngine(epoch_us=100.0)
        assert engine.epoch_of(0.0) == 0
        assert engine.epoch_of(99.999) == 0
        # A timestamp exactly on a boundary opens the next epoch.
        assert engine.epoch_of(100.0) == 1
        assert engine.epoch_of(250.0) == 2

    def test_negative_timestamp_clamped_to_epoch_zero(self):
        engine = TimeSeriesEngine(epoch_us=100.0)
        assert engine.epoch_of(-0.5) == 0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesEngine(epoch_us=0.0)

    def test_events_bucket_into_their_epochs(self):
        engine = TimeSeriesEngine(epoch_us=100.0)
        engine.on_event(EV_DEMAND_FAULT, 50.0, {})
        engine.on_event(EV_DEMAND_FAULT, 100.0, {})
        engine.on_event(EV_FABRIC_READ, 150.0, {"n": 4})
        out = engine.export(end_us=250.0)
        assert out["epochs"] == 3
        assert out["series"]["demand_faults"] == [1, 1, 0]
        assert out["series"]["remote_reads"] == [0, 4, 0]

    def test_export_covers_events_past_end(self):
        engine = TimeSeriesEngine(epoch_us=100.0)
        engine.on_event(EV_DEMAND_FAULT, 950.0, {})
        out = engine.export(end_us=100.0)
        assert out["epochs"] == 10
        assert sum(out["series"]["demand_faults"]) == 1

    def test_derived_per_epoch_ratios(self):
        engine = TimeSeriesEngine(epoch_us=100.0)
        engine.on_event(EV_PREFETCH_ISSUE, 10.0, {"n": 4})
        for _ in range(3):
            engine.on_event(EV_PREFETCH_HIT, 20.0, {})
        engine.on_event(EV_DEMAND_FAULT, 30.0, {})
        out = engine.export(end_us=99.0)
        assert out["derived"]["accuracy"] == [pytest.approx(3 / 4)]
        assert out["derived"]["coverage"] == [pytest.approx(3 / 4)]

    def test_latency_block_has_none_for_empty_epochs(self):
        engine = TimeSeriesEngine(epoch_us=100.0)
        engine.on_event(EV_FETCH_LATENCY, 150.0, {"latency_us": 8.0})
        out = engine.export(end_us=299.0)
        block = out["fetch_latency_us"]
        assert block["count"] == [0, 1, 0]
        assert block["p50"][0] is None and block["p99"][0] is None
        assert block["p50"][1] is not None
        assert block["mean"][1] == pytest.approx(8.0)


class TestConfigValidation:
    def test_epoch_width_validated(self):
        with pytest.raises(ValueError):
            TelemetryConfig(epoch_us=-1.0)

    def test_trace_limit_validated(self):
        with pytest.raises(ValueError):
            TelemetryConfig(trace_limit=0)


@pytest.mark.parametrize("case", sorted(_CASES))
class TestProbesDoNotPerturb:
    def test_enabled_equals_disabled_modulo_blob(self, case):
        disabled, enabled = run_pair(case)
        assert enabled.telemetry is not None
        stripped = enabled.to_dict(full=True)
        del stripped["telemetry"]
        assert stripped == disabled.to_dict(full=True)

    def test_disabled_result_has_no_telemetry_key(self, case):
        disabled, _ = run_pair(case)
        assert disabled.telemetry is None
        assert "telemetry" not in disabled.to_dict(full=True)
        assert "telemetry" not in disabled.to_dict()


@pytest.mark.parametrize("case", sorted(_CASES))
class TestReconciliation:
    """Per-epoch sums must equal the aggregate counters *exactly*."""

    def series(self, case):
        _, enabled = run_pair(case)
        return enabled, enabled.telemetry["timeseries"]["series"]

    def test_demand_faults(self, case):
        result, series = self.series(case)
        assert sum(series["demand_faults"]) == result.remote_demand_reads

    def test_prefetch_lifecycle(self, case):
        result, series = self.series(case)
        assert sum(series["prefetch_issued"]) == result.prefetch_issued
        assert sum(series["prefetch_dropped"]) == result.dropped_prefetches
        assert sum(series["prefetch_hits"]) == (
            result.prefetch_hit_dram
            + result.prefetch_hit_swapcache
            + result.prefetch_hit_inflight
        )
        assert sum(series["prefetch_wasted"]) == result.prefetch_wasted
        assert sum(series["prefetch_suppressed"]) == result.prefetch_suppressed
        # Landings close issue spans: never more than delivered pages.
        assert sum(series["prefetch_landed"]) <= (
            result.prefetch_issued - result.dropped_prefetches
        )

    def test_fabric_traffic_includes_every_attempt(self, case):
        # Counts are emitted before the injector check, so timed-out
        # attempts and repair traffic reconcile with fabric counters.
        result, series = self.series(case)
        assert sum(series["remote_reads"]) == result.fabric_reads
        assert sum(series["remote_writes"]) == result.fabric_writes

    def test_retries(self, case):
        result, series = self.series(case)
        assert sum(series["retries"]) == result.retries

    def test_recovery_events(self, case):
        result, series = self.series(case)
        assert sum(series["repairs"]) == result.repair_writes
        if result.node_crashes:
            # A crash is at least one transition (UP -> DOWN).
            assert sum(series["node_transitions"]) >= result.node_crashes

    def test_timeliness_samples_match_histogram(self, case):
        result, series = self.series(case)
        expected = result.timeliness.stat.count if result.timeliness else 0
        block = result.telemetry["timeseries"]["timeliness_us"]
        assert sum(block["count"]) == expected

    def test_epoch_axis_is_dense_and_monotone(self, case):
        result, series = self.series(case)
        ts = result.telemetry["timeseries"]
        assert ts["epochs"] >= 1
        for name, values in series.items():
            assert len(values) == ts["epochs"], name


class TestChromeTrace:
    def trace(self):
        _, enabled = run_pair("prefetch")
        return enabled, chrome_trace(enabled.telemetry["trace_events"])

    def test_serializes_and_has_metadata(self):
        _, doc = self.trace()
        parsed = json.loads(json.dumps(doc))
        events = parsed["traceEvents"]
        names = [ev["name"] for ev in events if ev["ph"] == "M"]
        assert "process_name" in names
        assert names.count("thread_name") == 4

    def test_prefetch_lifecycle_spans_present(self):
        result, doc = self.trace()
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert any(ev["name"].startswith("prefetch:") for ev in spans)
        assert any(ev["name"] == "demand_fault" for ev in spans)
        hits = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "i" and ev["name"].startswith("hit:")
        ]
        assert hits

    def test_events_are_well_formed(self):
        result, doc = self.trace()
        for ev in doc["traceEvents"]:
            assert ev["pid"] == TRACE_PID
            if ev["ph"] == "M":
                continue
            assert 0.0 <= ev["ts"] <= result.completion_time_us
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_trace_limit_bounds_memory(self):
        workload = build("quicksort", seed=SEED)
        result = runner.run(
            workload, "hopp", 0.5, FabricConfig(seed=SEED),
            telemetry=TelemetryConfig(trace=True, trace_limit=5),
        )
        blob = result.telemetry
        assert len(blob["trace_events"]) == 5
        assert blob["trace_truncated"] is True
        assert blob["trace_dropped"] > 0

    def test_recorder_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            TraceRecorder(EventBus(), limit=0)


_SAMPLE_RE = re.compile(
    r"^[a-z_][a-z0-9_]*(\{[a-z0-9_]+=\"[^\"]*\"(,[a-z0-9_]+=\"[^\"]*\")*\})? "
    r"-?[0-9][0-9a-z+-.]*$"
)


class TestPrometheus:
    def test_exposition_format(self):
        _, enabled = run_pair("prefetch")
        text = prometheus_snapshot(enabled)
        assert text.endswith("\n")
        families = {}
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                families[name] = kind
            elif not line.startswith("#"):
                assert _SAMPLE_RE.match(line), line
        # The _total suffix convention drives counter vs gauge.
        for name, kind in families.items():
            assert kind == ("counter" if name.endswith("_total") else "gauge")
        assert families["repro_accesses_total"] == "counter"
        assert families["repro_coverage_ratio"] == "gauge"

    def test_per_node_families_from_unified_snapshots(self):
        _, enabled = run_pair("crash")
        text = prometheus_snapshot(enabled)
        for node in range(3):
            assert f'node="{node}"' in text
        assert "repro_fabric_reads_total{" in text
        assert "repro_remote_pages_stored{" in text

    def test_recovery_counter_families_always_present(self):
        # Recovery counters default to 0 without an armed fault plan, so
        # the _total families must appear in every snapshot — dashboards
        # can rate() them without guarding against absent series.
        recovery = (
            "repro_node_crashes_total",
            "repro_node_rejoins_total",
            "repro_pages_repaired_total",
            "repro_pages_lost_total",
            "repro_pages_zero_filled_total",
            "repro_pages_salvaged_total",
            "repro_pages_drained_total",
            "repro_repair_reads_total",
            "repro_repair_writes_total",
            "repro_repair_bytes_total",
            "repro_repair_retries_total",
        )
        for case in ("prefetch", "crash"):
            _, enabled = run_pair(case)
            text = prometheus_snapshot(enabled)
            for family in recovery:
                assert f"# TYPE {family} counter" in text, (case, family)
                assert f"\n{family}{{" in text, (case, family)

    def test_recovery_counters_nonzero_after_crash(self):
        _, enabled = run_pair("crash")
        samples = {}
        for line in prometheus_snapshot(enabled).splitlines():
            if line and not line.startswith("#"):
                name_labels, value = line.split()
                samples[name_labels.split("{")[0]] = float(value)
        assert samples["repro_node_crashes_total"] > 0
        assert samples["repro_pages_repaired_total"] > 0

    def test_works_on_deserialized_result(self):
        _, enabled = run_pair("crash")
        revived = RunResult.from_dict(enabled.to_dict(full=True))
        assert prometheus_snapshot(revived) == prometheus_snapshot(enabled)

    def test_plain_result_without_telemetry_still_renders(self):
        disabled, _ = run_pair("prefetch")
        text = prometheus_snapshot(disabled)
        assert "repro_accesses_total" in text
        assert 'node="' not in text


class TestFacade:
    def test_export_shape_without_trace(self):
        telemetry = Telemetry(TelemetryConfig(epoch_us=250.0))
        telemetry.bus.emit(EV_DEMAND_FAULT, 10.0, pid=1, vpn=2)
        out = telemetry.export(end_us=500.0)
        assert out["config"]["epoch_us"] == 250.0
        assert out["events_total"] == 1
        assert "trace_events" not in out
        assert out["timeseries"]["series"]["demand_faults"] == [1, 0, 0]

    def test_export_is_json_serializable(self):
        _, enabled = run_pair("chaos")
        json.dumps(enabled.telemetry)
