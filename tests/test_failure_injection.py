"""Failure-injection and edge-case tests: the simulator must degrade
loudly (typed errors) or gracefully (documented fallbacks), never
silently corrupt state."""

import pytest

from repro.baselines.depthn import DepthNPrefetcher
from repro.baselines.fastswap import FastswapPrefetcher
from repro.net.rdma import FabricConfig
from repro.sim import runner
from repro.sim.machine import Machine, MachineConfig
from repro.workloads import build
from tests.conftest import quiet_fabric, touch_pages


class TestTinyMemory:
    def test_limit_smaller_than_working_set_still_completes(self):
        """With 8 local pages and hundreds of distinct pages, every
        access thrashes, but accounting stays consistent."""
        machine = Machine(
            MachineConfig(local_memory_pages=8, fabric=quiet_fabric(),
                          watermark_slack=2),
            fault_prefetcher=FastswapPrefetcher(),
        )
        machine.register_process(1)
        touch_pages(machine, 1, list(range(200)) * 2)
        assert machine.resident_pages("default") <= 8
        assert machine.frames.used == machine.resident_pages("default")
        assert machine.remote_demand_reads + machine.prefetch_issued > 0

    def test_limit_one_page_degenerate(self):
        machine = Machine(
            MachineConfig(local_memory_pages=1, fabric=quiet_fabric(),
                          watermark_slack=0)
        )
        machine.register_process(1)
        touch_pages(machine, 1, [0, 1, 0, 1, 0])
        assert machine.resident_pages("default") <= 2  # one in, one being placed

    def test_depthn_with_tiny_memory_does_not_deadlock(self):
        machine = Machine(
            MachineConfig(local_memory_pages=8, fabric=quiet_fabric(),
                          watermark_slack=2),
            fault_prefetcher=DepthNPrefetcher(32),
        )
        machine.register_process(1)
        touch_pages(machine, 1, list(range(100)) * 2)
        assert machine.now_us > 0


class TestRemoteCapacity:
    def test_remote_node_exhaustion_raises(self):
        machine = Machine(
            MachineConfig(
                local_memory_pages=4,
                remote_capacity_pages=8,
                fabric=quiet_fabric(),
                watermark_slack=1,
            )
        )
        machine.register_process(1)
        with pytest.raises(MemoryError):
            touch_pages(machine, 1, range(64))


class TestDegenerateTraces:
    def test_empty_trace(self):
        machine = Machine(MachineConfig(local_memory_pages=8, fabric=quiet_fabric()))
        machine.register_process(1)
        machine.run(iter([]))
        assert machine.accesses == 0
        assert machine.now_us == 0.0

    def test_single_access(self):
        machine = Machine(MachineConfig(local_memory_pages=8, fabric=quiet_fabric()))
        machine.register_process(1)
        machine.run([(1, 0)])
        assert machine.accesses == 1
        assert machine.minor_faults == 1

    def test_same_page_forever(self):
        machine = Machine(MachineConfig(local_memory_pages=8, fabric=quiet_fabric()))
        machine.register_process(1)
        machine.run([(1, 0)] * 1000)
        assert machine.remote_demand_reads == 0
        assert machine.minor_faults == 1


class TestExtremeFabric:
    def test_congested_fabric_slows_but_completes(self):
        wl = build("stream-simple", npages=200, passes=2)
        fast = runner.run(wl, "hopp", 0.5, FabricConfig(gbps=56.0, seed=1))
        slow = runner.run(
            wl, "hopp", 0.5,
            FabricConfig(gbps=0.5, jitter_us=0.0, spike_probability=0.0, seed=1),
        )
        assert slow.completion_time_us > fast.completion_time_us
        # Counters still conserve.
        assert slow.prefetch_hits <= slow.prefetch_issued

    def test_always_spiking_fabric(self):
        wl = build("stream-simple", npages=200, passes=2)
        result = runner.run(
            wl, "fastswap", 0.5,
            FabricConfig(spike_probability=1.0, spike_factor=20.0, seed=1),
        )
        assert result.completion_time_us > 0
        assert 0.0 <= result.coverage <= 1.0


class TestHoppRobustness:
    def test_hopp_with_pure_random_trace_stays_accurate_or_silent(self):
        """On unpredictable traffic HoPP should mostly abstain, not spray
        wrong prefetches (that is what keeps accuracy high)."""
        import random

        rng = random.Random(5)
        machine = runner.make_machine(
            build("stream-simple", npages=64), "hopp", 4.0, quiet_fabric()
        )
        trace = []
        for _ in range(3000):
            vpn = (1 << 20) + rng.randrange(2000)
            for block in range(8):
                trace.append((1, (vpn << 12) | (block << 6)))
        machine.run(iter(trace))
        plane = machine.hopp
        total_hot = plane.stt.hot_pages_in
        issued = sum(
            machine.issued_by_tier.get(tier, 0) for tier in ("ssp", "lsp", "rsp")
        )
        assert total_hot > 0
        # Far fewer prefetches than hot pages: the trainer abstained.
        assert issued < total_hot * 0.2

    def test_workload_without_vmas_runs_under_vma_readahead(self):
        machine = Machine(
            MachineConfig(local_memory_pages=16, fabric=quiet_fabric()),
            fault_prefetcher=__import__(
                "repro.baselines.vma_readahead", fromlist=["VmaReadaheadPrefetcher"]
            ).VmaReadaheadPrefetcher(),
        )
        machine.register_process(1)  # no VMAs registered
        touch_pages(machine, 1, list(range(64)) * 2)
        assert machine.accesses == 128
