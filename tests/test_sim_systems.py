"""Tests for the system registry's composition rules."""

import pytest

from repro.net.rdma import FabricConfig
from repro.sim import systems
from repro.sim.machine import MachineConfig
from repro.sim.systems import SystemSpec


def config(limit=64):
    return MachineConfig(local_memory_pages=limit, fabric=FabricConfig(seed=1))


class TestRegistryComposition:
    def test_every_registered_system_builds(self):
        for name in systems.names():
            machine = systems.build(name).build(config())
            assert machine.config.local_memory_pages == 64

    def test_hopp_variants_carry_fastswap_fault_path(self):
        """Section V: HoPP is integrated with Fastswap — every hopp*
        system keeps the read-ahead on the fault path."""
        for name in systems.names():
            if not name.startswith("hopp"):
                continue
            machine = systems.build(name).build(config())
            assert machine.fault_prefetcher is not None
            assert machine.fault_prefetcher.name == "fastswap"
            assert machine.hopp is not None

    def test_charging_policy_per_paper(self):
        """Section I: HoPP charges prefetched pages to the cgroup;
        Fastswap and Leap do not."""
        for name, expected in (
            ("hopp", True), ("depth-32", True),
            ("fastswap", False), ("leap", False), ("vma-readahead", False),
        ):
            machine = systems.build(name).build(config())
            assert machine.config.charge_prefetch is expected, name

    def test_depth_variants_inject(self):
        for name in ("depth-16", "depth-32"):
            machine = systems.build(name).build(config())
            assert machine.fault_prefetcher.inject_pte is True

    def test_custom_registration(self):
        from repro.baselines.base import NoPrefetch
        from repro.sim.machine import Machine

        spec = SystemSpec(
            "test-custom", lambda cfg: Machine(cfg, fault_prefetcher=NoPrefetch())
        )
        systems.register(spec)
        try:
            assert "test-custom" in systems.names()
            machine = systems.build("test-custom").build(config())
            assert machine.fault_prefetcher.name == "noprefetch"
        finally:
            del systems._REGISTRY["test-custom"]

    def test_hopp_huge_has_batcher(self):
        machine = systems.build("hopp-huge").build(config())
        assert machine.hopp.batcher is not None
        assert systems.build("hopp").build(config()).hopp.batcher is None

    def test_hopp_evict_has_advisor(self):
        machine = systems.build("hopp-evict").build(config())
        assert machine.hopp.advisor is not None
        assert systems.build("hopp").build(config()).hopp.advisor is None

    def test_hopp_learned_uses_learned_trainer(self):
        from repro.hopp.learned import LearnedTrainer

        machine = systems.build("hopp-learned").build(config())
        assert isinstance(machine.hopp.trainer, LearnedTrainer)

    def test_spec_build_does_not_mutate_shared_config(self):
        shared = config()
        systems.build("fastswap").build(shared)
        # charge_prefetch=False was applied to a copy, not the original.
        assert shared.charge_prefetch is True
