"""Tests for the stream-aware eviction advisor (Section IV extension)."""

import pytest

from repro.hopp.eviction import StreamAwareEvictionAdvisor
from tests.conftest import quiet_fabric


class TestAdvisor:
    def test_hints_trail_behind_head(self):
        advisor = StreamAwareEvictionAdvisor(protect_pages=4)
        for vpn in range(100, 110):
            advisor.on_stream_step(1, vpn, 1)
        victims = advisor.take_victims(100, lambda p, v: True)
        vpns = [v for _, v in victims]
        # Hints are head - protect: 96..105, all behind the final head.
        assert vpns == list(range(96, 106))

    def test_descending_stream_hints_above(self):
        advisor = StreamAwareEvictionAdvisor(protect_pages=4)
        advisor.on_stream_step(1, 100, -1)
        victims = advisor.take_victims(1, lambda p, v: True)
        assert victims == [(1, 104)]

    def test_negative_hints_skipped(self):
        advisor = StreamAwareEvictionAdvisor(protect_pages=10)
        advisor.on_stream_step(1, 3, 1)
        assert len(advisor) == 0

    def test_duplicate_hints_collapsed(self):
        advisor = StreamAwareEvictionAdvisor(protect_pages=0)
        advisor.on_stream_step(1, 5, 1)
        advisor.on_stream_step(1, 5, 1)
        assert len(advisor) == 1

    def test_stale_hints_filtered(self):
        advisor = StreamAwareEvictionAdvisor(protect_pages=0)
        advisor.on_stream_step(1, 5, 1)
        advisor.on_stream_step(1, 6, 1)
        victims = advisor.take_victims(10, lambda p, v: v != 5)
        assert victims == [(1, 6)]
        assert advisor.hints_used == 1

    def test_cancel(self):
        advisor = StreamAwareEvictionAdvisor(protect_pages=0)
        advisor.on_stream_step(1, 5, 1)
        advisor.cancel(1, 5)
        assert advisor.take_victims(10, lambda p, v: True) == []

    def test_capacity_bounded(self):
        advisor = StreamAwareEvictionAdvisor(protect_pages=0, capacity=4)
        for vpn in range(10):
            advisor.on_stream_step(1, vpn, 1)
        assert len(advisor) == 4
        victims = advisor.take_victims(10, lambda p, v: True)
        assert [v for _, v in victims] == [6, 7, 8, 9]  # oldest dropped

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamAwareEvictionAdvisor(protect_pages=-1)


class TestScanResistance:
    def test_hopp_evict_protects_working_set(self):
        """The Section IV claim end to end: trace-informed eviction
        keeps a reusable working set local under scan pressure."""
        import repro

        wl = repro.workloads.build(
            "scan-with-workingset", scan_pages=1200, working_set_pages=300,
            passes=2,
        )
        plain = repro.run(wl, "hopp", 0.33, quiet_fabric())
        aware = repro.run(wl, "hopp-evict", 0.33, quiet_fabric())
        assert aware.remote_demand_reads < plain.remote_demand_reads
        assert aware.completion_time_us < plain.completion_time_us

    def test_no_regression_on_plain_stream(self):
        import repro

        wl = repro.workloads.build("stream-simple", npages=800, passes=2)
        plain = repro.run(wl, "hopp", 0.5, quiet_fabric())
        aware = repro.run(wl, "hopp-evict", 0.5, quiet_fabric())
        assert aware.completion_time_us <= plain.completion_time_us * 1.1
