"""Tests for the core value types and constants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import constants
from repro.common.types import (
    FaultBreakdown,
    MemoryAccess,
    PageKind,
    PrefetchDecision,
    TraceRecord,
    VmaRegion,
)


class TestConstants:
    def test_geometry(self):
        assert constants.PAGE_SIZE == 4096
        assert constants.BLOCK_SIZE == 64
        assert constants.BLOCKS_PER_PAGE == 64

    def test_swap_path_latency_matches_paper_range(self):
        # Section II-A: worst case 8.3 to 11.3 us; fast side is 8.3.
        assert constants.T_REMOTE_FAULT_US == pytest.approx(6.3)
        # The paper's 8.3 includes the 2 us reclaim share now done in
        # advance; the critical-path sum is context + walk + swapcache +
        # rdma + pte = 0.3 + 0.6 + 0.4 + 4.0 + 1.0.
        assert constants.T_PREFETCH_HIT_US == pytest.approx(2.3)
        assert constants.T_DRAM_HIT_US < constants.T_PREFETCH_HIT_US

    def test_prefetch_hit_at_least_23x_dram_hit(self):
        # Section II-C: prefetch-hit is at least 23x a DRAM hit.
        ratio = constants.T_PREFETCH_HIT_US / constants.T_DRAM_HIT_US
        assert ratio == pytest.approx(23, rel=1e-9)

    def test_hpd_geometry(self):
        assert constants.HPD_SETS * constants.HPD_WAYS == 64


class TestMemoryAccess:
    def test_vpn_and_block(self):
        access = MemoryAccess(pid=1, vaddr=(5 << 12) | (3 << 6))
        assert access.vpn == 5
        assert access.block == 3

    @given(st.integers(0, 2**48 - 1))
    @settings(max_examples=50, deadline=None)
    def test_block_in_range(self, vaddr):
        access = MemoryAccess(pid=1, vaddr=vaddr)
        assert 0 <= access.block < 64
        assert access.vpn == vaddr // 4096


class TestPrefetchDecision:
    def test_simple_stream_target(self):
        decision = PrefetchDecision(tier="ssp", base_vpn=100, per_offset_stride=2)
        assert decision.target_vpn(1) == 102
        assert decision.target_vpn(5) == 110

    def test_ladder_target_includes_fixed_delta(self):
        decision = PrefetchDecision(
            tier="lsp", base_vpn=100, per_offset_stride=4, fixed_delta=1
        )
        # VPN_A + stride_target + i * pattern_stride (Algorithm 1).
        assert decision.target_vpn(2) == 100 + 1 + 8

    def test_negative_stride(self):
        decision = PrefetchDecision(tier="ssp", base_vpn=100, per_offset_stride=-1)
        assert decision.target_vpn(3) == 97


class TestTraceRecord:
    def test_ppn(self):
        record = TraceRecord(seq=0, timestamp=0, is_write=False, paddr=0x5000)
        assert record.ppn == 5


class TestVmaRegion:
    def test_contains(self):
        region = VmaRegion(10, 20)
        assert 10 in region
        assert 19 in region
        assert 20 not in region
        assert 9 not in region
        assert region.npages == 10


class TestFaultBreakdown:
    def test_total(self):
        breakdown = FaultBreakdown(
            dram_hit_us=1.0, prefetch_hit_us=2.0, remote_fault_us=3.0
        )
        assert breakdown.total_us == pytest.approx(6.0)


class TestPageKind:
    def test_values_fit_two_bits(self):
        # Figure 6 gives the huge-page flag 2 bits.
        assert all(0 <= kind <= 3 for kind in PageKind)
