"""Tests for the Hot Page Detection table (Section III-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hopp.hpd import HotPageDetector


def block_addr(ppn: int, block: int) -> int:
    return (ppn << 12) | (block << 6)


class TestHotPageDetector:
    def test_extracts_after_threshold_reads(self):
        hpd = HotPageDetector(threshold=8)
        for block in range(7):
            assert hpd.process(block_addr(5, block)) is None
        assert hpd.process(block_addr(5, 7)) == 5
        assert hpd.hot_pages == 1

    def test_send_bit_drops_further_accesses(self):
        hpd = HotPageDetector(threshold=2)
        hpd.process(block_addr(5, 0))
        assert hpd.process(block_addr(5, 1)) == 5
        # Further accesses to the extracted page are dropped.
        assert hpd.process(block_addr(5, 2)) is None
        assert hpd.process(block_addr(5, 3)) is None
        assert hpd.dropped_after_send == 2
        assert hpd.hot_pages == 1

    def test_threshold_one_extracts_immediately(self):
        hpd = HotPageDetector(threshold=1)
        assert hpd.process(block_addr(9, 0)) == 9

    def test_writes_ignored(self):
        hpd = HotPageDetector(threshold=1)
        assert hpd.process(block_addr(3, 0), is_write=True) is None
        assert hpd.writes_ignored == 1
        assert hpd.accesses == 0

    def test_repeated_detection_after_eviction(self):
        # 1 set x 2 ways: touching 3 pages evicts the oldest.
        hpd = HotPageDetector(threshold=1, nsets=1, nways=2)
        hpd.process(block_addr(1, 0))
        hpd.process(block_addr(2, 0))
        hpd.process(block_addr(3, 0))  # evicts page 1
        hpd.process(block_addr(1, 1))  # page 1 hot again
        assert hpd.repeated_detections == 1
        assert hpd.hot_pages == 4

    def test_low_threshold_extracts_more(self):
        """Table II's trend: smaller N -> more hot pages per access."""
        trace = [block_addr(p, b) for p in range(40) for b in range(16)]
        ratios = []
        for threshold in (2, 8, 32):
            hpd = HotPageDetector(threshold=threshold)
            for addr in trace:
                hpd.process(addr)
            ratios.append(hpd.hot_page_ratio)
        assert ratios[0] >= ratios[1] >= ratios[2]

    def test_full_page_visit_ratio_matches_table2(self):
        """64 reads/page with N=8 and no churn -> 1/64 = 1.56% (the
        K-means row of Table II)."""
        hpd = HotPageDetector(threshold=8)
        for page in range(32):
            for block in range(64):
                hpd.process(block_addr(page, block))
        assert hpd.hot_page_ratio == pytest.approx(1 / 64, rel=0.01)

    def test_bandwidth_overhead_small(self):
        hpd = HotPageDetector(threshold=8)
        for page in range(32):
            for block in range(64):
                hpd.process(block_addr(page, block))
        # 8 bytes per hot page vs 64 bytes per access: 1/64 * 8/64.
        assert hpd.bandwidth_overhead == pytest.approx(8 / (64 * 64), rel=0.01)

    def test_set_mapping_uses_low_ppn_bits(self):
        hpd = HotPageDetector(threshold=1, nsets=4, nways=1)
        # Pages 0 and 4 share set 0; page 1 lives in set 1.
        hpd.process(block_addr(0, 0))
        hpd.process(block_addr(4, 0))  # evicts page 0
        hpd.process(block_addr(1, 0))
        assert hpd.tracked_pages == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            HotPageDetector(threshold=0)
        with pytest.raises(ValueError):
            HotPageDetector(threshold=65)

    def test_reset_stats(self):
        hpd = HotPageDetector(threshold=1)
        hpd.process(block_addr(1, 0))
        hpd.reset_stats()
        assert hpd.accesses == 0 and hpd.hot_pages == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 63)),
            min_size=1,
            max_size=500,
        ),
        st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_extraction_rate_bounded_by_threshold(self, accesses, threshold):
        """Every extraction consumes at least ``threshold`` READ accesses
        since the entry's (re)insertion, so hot_pages <= accesses/N."""
        hpd = HotPageDetector(threshold=threshold)
        for ppn, block in accesses:
            hpd.process(block_addr(ppn, block))
        assert hpd.hot_pages <= len(accesses) // threshold
        assert hpd.accesses == len(accesses)
