"""Tests for the RDMA fabric and remote memory node."""

import pytest

from repro.net.rdma import FabricConfig, RdmaFabric
from repro.net.remote import RemoteMemoryNode, RemoteReadError
from tests.conftest import quiet_fabric


class TestRdmaFabric:
    def test_uncontended_read_latency(self):
        fabric = RdmaFabric(quiet_fabric())
        done = fabric.read_page(10.0)
        assert done == pytest.approx(10.0 + 4.0)

    def test_jitter_bounds(self):
        fabric = RdmaFabric(FabricConfig(jitter_us=1.0, spike_probability=0.0))
        for _ in range(100):
            latency = fabric.read_page(0.0)
            assert 4.0 <= latency <= 5.0 + fabric.page_service_us * 1000

    def test_queueing_under_burst(self):
        """Bulk transfers serialize on the link."""
        fabric = RdmaFabric(quiet_fabric())
        first = fabric.read_page(0.0)
        tenth = None
        for _ in range(9):
            tenth = fabric.read_page(0.0)
        assert tenth > first
        assert tenth == pytest.approx(9 * fabric.page_service_us + 4.0)

    def test_priority_reads_bypass_bulk_queue(self):
        fabric = RdmaFabric(quiet_fabric())
        for _ in range(50):
            fabric.read_page(0.0)  # bulk backlog
        demand = fabric.read_page(0.0, priority=True)
        assert demand == pytest.approx(4.0)

    def test_priority_occupies_shared_link(self):
        fabric = RdmaFabric(quiet_fabric())
        fabric.read_page(0.0, priority=True)
        bulk = fabric.read_page(0.0)
        assert bulk >= 4.0 + fabric.page_service_us

    def test_spikes_inflate_latency(self):
        always_spike = FabricConfig(
            jitter_us=0.0, spike_probability=1.0, spike_factor=5.0
        )
        fabric = RdmaFabric(always_spike)
        assert fabric.read_page(0.0) == pytest.approx(20.0)

    def test_page_service_time_at_56gbps(self):
        fabric = RdmaFabric(FabricConfig(gbps=56.0))
        # 4 KB = 32768 bits at 56 Gb/s = ~0.585 us.
        assert fabric.page_service_us == pytest.approx(32768 / 56_000)

    def test_counters(self):
        fabric = RdmaFabric(quiet_fabric())
        fabric.read_page(0.0)
        fabric.write_page(0.0)
        assert fabric.reads == 1 and fabric.writes == 1
        assert fabric.transfers == 2
        assert fabric.bytes_moved == 2 * 4096

    def test_deterministic_with_seed(self):
        a = RdmaFabric(FabricConfig(seed=42))
        b = RdmaFabric(FabricConfig(seed=42))
        lat_a = [a.read_page(float(i)) for i in range(50)]
        lat_b = [b.read_page(float(i)) for i in range(50)]
        assert lat_a == lat_b


class TestReadBatchPinned:
    """Seed-pinned ``read_batch`` latency sequences.  Any change to the
    fabric's RNG consumption order, queueing rule, or service time shows
    up here as an exact-value diff — the single-node-equivalence
    invariant of the cluster subsystem depends on this sequence never
    shifting silently."""

    def _fabric(self):
        return RdmaFabric(FabricConfig(seed=7))

    def test_first_batch_sequence(self):
        fabric = self._fabric()
        assert fabric.read_batch(0.0, 4) == [
            4.844209069009388,
            5.429351926152245,
            6.014494783295102,
            6.599637640437959,
        ]

    def test_second_batch_queues_behind_first(self):
        fabric = self._fabric()
        fabric.read_batch(0.0, 4)
        # Issued at t=0 but the link is busy until the first batch
        # drains, so arrivals continue one service time apart.
        assert fabric.read_batch(0.0, 3) == [
            7.446461864146169,
            8.031604721289026,
            8.616747578431884,
        ]

    def test_batch_arrivals_are_service_time_spaced(self):
        fabric = self._fabric()
        arrivals = fabric.read_batch(0.0, 4)
        for earlier, later in zip(arrivals, arrivals[1:]):
            assert later - earlier == pytest.approx(fabric.page_service_us)

    def test_priority_read_after_batches(self):
        fabric = self._fabric()
        fabric.read_batch(0.0, 4)
        fabric.read_batch(0.0, 3)
        # The priority QP does not queue behind bulk batches.
        assert fabric.read_page(100.0, priority=True) == 104.42870560344535

    def test_page_service_time_pinned(self):
        assert self._fabric().page_service_us == 0.5851428571428572

    def test_empty_batch_rejected(self):
        fabric = self._fabric()
        with pytest.raises(ValueError):
            fabric.read_batch(0.0, 0)
        assert fabric.reads == 0


class TestStatsSnapshots:
    def test_fabric_snapshot_counts_and_latency(self):
        fabric = RdmaFabric(FabricConfig(seed=7))
        fabric.read_batch(0.0, 4)
        fabric.read_batch(0.0, 3)
        fabric.read_page(100.0, priority=True)
        snapshot = fabric.stats_snapshot()
        assert snapshot["reads"] == 8
        assert snapshot["writes"] == 0
        assert snapshot["bytes_moved"] == 8 * 4096
        assert snapshot["latency_max_us"] == 8.616747578431884
        assert snapshot["latency_mean_us"] == pytest.approx(6.548, abs=1e-3)
        assert snapshot["link_busy_until_us"] > 100.0

    def test_fabric_snapshot_when_idle(self):
        snapshot = RdmaFabric(quiet_fabric()).stats_snapshot()
        assert snapshot["reads"] == 0
        assert snapshot["latency_max_us"] == 0.0

    def test_fabric_repr(self):
        fabric = RdmaFabric(quiet_fabric())
        fabric.read_page(0.0)
        text = repr(fabric)
        assert "RdmaFabric" in text and "reads=1" in text

    def test_remote_node_snapshot(self):
        node = RemoteMemoryNode(capacity_pages=4)
        node.write(0, 1, 100)
        node.write(0, 1, 101)  # overwrite
        node.write(1, 1, 102)
        node.release(1)
        snapshot = node.stats_snapshot()
        assert snapshot == {
            "capacity_pages": 4,
            "pages_stored": 1,
            "pages_written": 3,
            "pages_read": 0,
            "pages_overwritten": 1,
            "pages_released": 1,
            "pages_lost": 0,
        }
        # The conservation invariant is readable straight off the dict.
        assert snapshot["pages_written"] == (
            snapshot["pages_stored"]
            + snapshot["pages_overwritten"]
            + snapshot["pages_released"]
        )
        assert node.conserved

    def test_remote_node_repr(self):
        node = RemoteMemoryNode(capacity_pages=4)
        node.write(0, 1, 100)
        text = repr(node)
        assert "RemoteMemoryNode" in text and "stored=1" in text


class TestFabricConfigValidation:
    def test_zero_bandwidth_rejected(self):
        """gbps=0 used to crash later with ZeroDivisionError in
        page_service_us; it must fail loudly at construction."""
        with pytest.raises(ValueError):
            FabricConfig(gbps=0.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(gbps=-1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(jitter_us=-0.1)

    def test_spike_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(spike_probability=1.5)
        with pytest.raises(ValueError):
            FabricConfig(spike_probability=-0.01)

    def test_spike_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(spike_factor=0.5)

    def test_negative_base_latency_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(base_latency_us=-1.0)

    def test_valid_config_accepted(self):
        config = FabricConfig(gbps=0.5, jitter_us=0.0, spike_probability=0.0)
        assert RdmaFabric(config).page_service_us > 0


class TestRemoteMemoryNode:
    def test_write_read_roundtrip(self):
        node = RemoteMemoryNode(capacity_pages=4)
        node.write(0, 1, 100)
        assert node.read(0) == (1, 100)
        assert node.pages_stored == 1

    def test_read_empty_slot_raises(self):
        node = RemoteMemoryNode(capacity_pages=4)
        with pytest.raises(RemoteReadError):
            node.read(3)

    def test_capacity_enforced(self):
        node = RemoteMemoryNode(capacity_pages=1)
        node.write(0, 1, 100)
        with pytest.raises(MemoryError):
            node.write(1, 1, 101)

    def test_overwrite_same_slot_allowed_at_capacity(self):
        node = RemoteMemoryNode(capacity_pages=1)
        node.write(0, 1, 100)
        node.write(0, 1, 200)
        assert node.read(0) == (1, 200)

    def test_release(self):
        node = RemoteMemoryNode(capacity_pages=1)
        node.write(0, 1, 100)
        node.release(0)
        assert not node.holds(0)
        node.write(5, 2, 300)  # capacity freed

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RemoteMemoryNode(capacity_pages=0)

    def test_release_and_overwrite_accounting(self):
        node = RemoteMemoryNode(capacity_pages=4)
        node.write(0, 1, 100)
        node.write(1, 1, 101)
        node.write(0, 1, 102)  # overwrite
        node.release(1)
        node.release(1)  # double release is a no-op, not double-counted
        assert node.pages_written == 3
        assert node.pages_overwritten == 1
        assert node.pages_released == 1
        assert node.pages_stored == 1

    def test_slot_conservation_invariant(self):
        """written == stored + overwritten + released, so slot leaks are
        visible as a broken equality rather than silent growth."""
        import random

        node = RemoteMemoryNode(capacity_pages=16)
        rng = random.Random(3)
        for step in range(500):
            slot = rng.randrange(24)
            if rng.random() < 0.6:
                try:
                    node.write(slot, 1, step)
                except MemoryError:
                    node.release(rng.choice(list(node._slots)))
            else:
                node.release(slot)
            assert node.pages_written == (
                node.pages_stored + node.pages_overwritten + node.pages_released
            )
