"""Tests for SSP, LSP (Algorithm 1), RSP (Algorithm 2) and the adaptive
three-tier cascade — including the paper's Figure 2/3 worked examples."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hopp import lsp, rsp, ssp
from repro.hopp.ssp import dominant_stride
from repro.hopp.rsp import ripple_score
from repro.hopp.three_tier import ThreeTierTrainer, TierConfig
from tests.conftest import make_observation


def ladder_vpns(base=1000, offsets=(0, 9, 22, 43), rise=2, steps=4):
    """A Figure-2-style ladder VPN sequence."""
    vpns = []
    for j in range(steps):
        for off in offsets:
            vpns.append(base + off + j * rise)
    return vpns


class TestSSP:
    def test_dominant_stride_detection(self):
        assert dominant_stride([2] * 8 + [5] * 3, min_count=8) == 2
        assert dominant_stride([2] * 7 + [5] * 4, min_count=8) is None

    def test_zero_stride_never_dominates(self):
        assert dominant_stride([0] * 20, min_count=8) is None

    def test_negative_stride(self):
        obs = make_observation(list(range(116, 100, -1)))
        decision = ssp.train(obs)
        assert decision is not None
        assert decision.per_offset_stride == -1
        assert decision.target_vpn(1) == 100

    def test_simple_stream_decision(self):
        obs = make_observation([100 + 2 * i for i in range(16)])
        decision = ssp.train(obs)
        assert decision.tier == "ssp"
        assert decision.per_offset_stride == 2
        assert decision.base_vpn == 130
        # VPN_history[L-1] + i*stride (Section III-D 2).
        assert decision.target_vpn(3) == 136

    def test_interference_tolerated_up_to_half(self):
        # 10 of 15 strides are 1: dominant.
        vpns = [100]
        for i in range(15):
            vpns.append(vpns[-1] + (1 if i % 3 != 2 else 7))
        obs = make_observation(vpns)
        decision = ssp.train(obs)
        assert decision is not None and decision.per_offset_stride == 1

    def test_no_dominant_returns_none(self):
        obs = make_observation(ladder_vpns())
        assert ssp.train(obs) is None

    def test_empty_strides(self):
        assert dominant_stride([], min_count=1) is None


class TestLSPFigure2Example:
    """Reproduce the worked example of Section III-D(3): receiving a11,
    pattern candidates end at a7 and a3, stride_target = a8-a7,
    pattern_stride = a11-a7."""

    def setup_method(self):
        # A ladder with 3 repetitions of a 4-access tread + rise.
        # Use non-uniform offsets so SSP cannot claim it.
        self.vpns = ladder_vpns(base=1000, offsets=(0, 9, 22, 43), rise=2, steps=3)
        # a1..a12; take the first 11 accesses as the history (a11 newest).
        self.history = self.vpns[:11]

    def test_decision_matches_example(self):
        obs = make_observation(self.history)
        decision = lsp.train(obs)
        assert decision is not None
        a = self.history
        # Candidates end at indices 6 (a7) and 2 (a3); their next strides
        # are a8-a7 and a4-a3 (equal by construction).
        stride_target = a[7] - a[6]
        pattern_stride = a[10] - a[6]  # a11 - a7
        assert decision.fixed_delta == stride_target
        assert decision.per_offset_stride == pattern_stride
        # Line 16: VPN_A + stride_target + i*pattern_stride.
        assert decision.target_vpn(1) == a[10] + stride_target + pattern_stride

    def test_prediction_is_correct_future_access(self):
        obs = make_observation(self.history)
        decision = lsp.train(obs)
        predicted = decision.target_vpn(0)
        # offset 0 -> the immediate next access in the ladder.
        assert predicted == self.vpns[11]


class TestLSP:
    def test_no_repetition_returns_none(self):
        obs = make_observation([100, 101, 103, 106, 110, 115, 121, 128])
        assert lsp.train(obs) is None

    def test_short_history_returns_none(self):
        obs = make_observation([1, 2, 3])
        assert lsp.train(obs) is None

    def test_majority_vote_on_next_stride(self):
        # Pattern (5, 1) repeats three times; next strides differ: the
        # majority wins.
        vpns = [0, 5, 6, 11, 12, 17, 18, 19, 24, 25]
        # strides: 5,1,5,1,5,1,1,5,1 -> occurrences of (5,1) at ends 2,4,6,9
        obs = make_observation(vpns)
        decision = lsp.train(obs)
        assert decision is not None
        # next strides after candidate occurrences (newest-first scan,
        # excluding target): ends 6 -> stride 1; 4 -> 5; 2 -> 5.
        assert decision.fixed_delta == 5

    def test_degenerate_zero_pattern_stride_rejected(self):
        # Identical VPN pattern positions would give pattern_stride 0.
        vpns = [10, 12, 14, 12, 14, 12, 14, 12, 14]
        obs = make_observation(vpns)
        decision = lsp.train(obs)
        if decision is not None:
            assert decision.per_offset_stride != 0


class TestRSPFigure3Example:
    def test_pure_stride_one_is_ripple(self):
        obs = make_observation(list(range(100, 116)))
        decision = rsp.train(obs)
        assert decision is not None
        assert decision.per_offset_stride == 1
        assert decision.target_vpn(2) == 117

    def test_out_of_order_ripple_detected(self):
        # Net stride 1 with local swaps: 1,3,2,4,6,5,7,9,8,10,12,11,...
        vpns = []
        base = 100
        for group in range(6):
            start = base + group * 3
            vpns.extend([start, start + 2, start + 1])
        obs = make_observation(vpns[:16])
        decision = rsp.train(obs)
        assert decision is not None
        assert decision.per_offset_stride == 1

    def test_figure3_hop_and_return(self):
        """An access hops out of the stream and returns: the cumulative
        stride from the newest access keeps landing within max_stride."""
        vpns = [100, 101, 102, 115, 103, 104, 105, 118, 106, 107,
                108, 109, 121, 110, 111, 112]
        obs = make_observation(vpns)
        decision = rsp.train(obs)
        assert decision is not None

    def test_large_strides_rejected(self):
        obs = make_observation([100 + 10 * i for i in range(16)])
        assert rsp.train(obs) is None

    def test_ripple_score_counts_returns(self):
        # strides: newest stride small counts 1; walk back accumulates.
        assert ripple_score([1, 1, 1]) == 3
        assert ripple_score([10, 10, 10]) == 0
        assert ripple_score([]) == 0

    def test_max_stride_tolerance(self):
        # stride 2 tolerated, stride 3 is not (max_stride=2).
        assert ripple_score([2], max_stride=2) == 1
        assert ripple_score([3], max_stride=2) == 0


class TestThreeTier:
    def test_priority_ssp_first(self):
        trainer = ThreeTierTrainer()
        obs = make_observation(list(range(100, 116)))
        decision = trainer.train(obs)
        # Stride-1 is both a simple stream and a ripple: SSP wins.
        assert decision.tier == "ssp"
        assert trainer.decisions_by_tier["ssp"] == 1

    def test_lsp_when_ssp_fails(self):
        trainer = ThreeTierTrainer()
        obs = make_observation(ladder_vpns(steps=4)[:16])
        decision = trainer.train(obs)
        assert decision.tier == "lsp"

    def test_rsp_as_last_resort(self):
        trainer = ThreeTierTrainer(TierConfig(enable_ssp=False, enable_lsp=False))
        obs = make_observation(list(range(100, 116)))
        decision = trainer.train(obs)
        assert decision.tier == "rsp"

    def test_no_decision_counted(self):
        trainer = ThreeTierTrainer()
        import random
        rng = random.Random(3)
        vpns = [100]
        for _ in range(15):
            vpns.append(vpns[-1] + rng.choice([7, -13, 29, 41]))
        obs = make_observation(vpns)
        if trainer.train(obs) is None:
            assert trainer.no_decision == 1

    def test_tier_config_only(self):
        config = TierConfig.only("ssp", "rsp")
        assert config.enable_ssp and config.enable_rsp and not config.enable_lsp
        with pytest.raises(ValueError):
            TierConfig.only("bogus")

    def test_disabled_tiers_never_fire(self):
        trainer = ThreeTierTrainer(TierConfig.only("ssp"))
        obs = make_observation(ladder_vpns(steps=4)[:16])
        assert trainer.train(obs) is None

    @given(st.lists(st.integers(-50, 50), min_size=15, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_cascade_never_crashes_and_tiers_tagged(self, strides):
        vpns = [10_000]
        for stride in strides:
            vpns.append(vpns[-1] + stride)
        obs = make_observation(vpns)
        trainer = ThreeTierTrainer()
        decision = trainer.train(obs)
        if decision is not None:
            assert decision.tier in ("ssp", "lsp", "rsp")
